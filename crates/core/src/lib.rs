#![warn(missing_docs)]
// Indexed loops over several parallel planes are the idiom of this solver
// (the loop order *is* the optimization under study); zipped iterators would
// obscure exactly what Figure 2 measures.
#![allow(clippy::needless_range_loop)]

//! # ns-core
//!
//! The paper's application: a time-accurate axisymmetric compressible
//! Navier-Stokes / Euler solver for an excited supersonic jet, discretized
//! with the fourth-order Gottlieb–Turkel "2-4" MacCormack scheme
//! (Jayasimha, Hayder & Pillay, *Parallelizing Navier-Stokes Computations on
//! a Variety of Architectural Platforms*, SC'95).
//!
//! The crate provides:
//!
//! * the governing equations in the paper's radially weighted conservative
//!   form ([`physics`]),
//! * the split one-dimensional 2-4 predictor/corrector operators
//!   ([`scheme`]) with halo hooks so the identical numerics run serially and
//!   distributed,
//! * the paper's boundary treatment: excited tanh-profile inflow,
//!   Hayder–Turkel characteristic outflow, axis symmetry, far field and
//!   cubic flux extrapolation to artificial points ([`bc`]),
//! * the five single-processor optimization versions of the hot kernels
//!   that Figure 2 studies ([`kernels`], [`config::Version`]),
//! * a shared-memory parallel driver in the style of the paper's Cray Y-MP
//!   DOALL parallelization ([`shared`]),
//! * FLOP and workload instrumentation feeding the paper's Tables 1-2 and
//!   the platform simulator ([`opcount`], [`workload`]).
//!
//! ## Quick start
//!
//! ```
//! use ns_core::config::{Regime, SolverConfig};
//! use ns_core::driver::Solver;
//! use ns_numerics::Grid;
//!
//! let cfg = SolverConfig::paper(Grid::small(), Regime::NavierStokes);
//! let mut solver = Solver::new(cfg);
//! solver.run(10);
//! assert!(solver.healthy());
//! ```

pub mod bc;
pub mod checkpoint;
pub mod config;
pub mod diag;
pub mod dissipation;
pub mod driver;
pub mod field;
pub mod jacobian;
pub mod kernels;
pub mod mms;
pub mod opcount;
pub mod physics;
pub mod probe;
pub mod scheme;
pub mod shared;
pub mod soa;
pub mod workload;

pub use config::{Regime, SolverConfig, Version};
pub use driver::Solver;
pub use field::{Field, Patch};
