//! Time-stepping driver.
//!
//! One time step applies both split operators; successive steps alternate
//! the symmetric variants (paper Section 3):
//!
//! ```text
//! Q^{n+1} = L1x L1r Q^n          (even steps: radial first)
//! Q^{n+2} = L2r L2x Q^{n+1}      (odd steps: axial first)
//! ```
//!
//! The same driver advances the serial solver (one patch spanning the grid,
//! [`NoHalo`]) and each rank of the distributed solver (a block patch and a
//! real halo exchanger from `ns-runtime`).

use crate::config::SolverConfig;
use crate::field::{Field, Patch, Workspace};
use crate::opcount::FlopLedger;
use crate::scheme::{self, NoHalo, Variant, XHalo};
use crate::{bc, diag, dissipation};
use ns_numerics::GasModel;
use std::sync::{Arc, OnceLock};

/// Wall-clock latency of every completed step, in microseconds, recorded
/// into the process-global metrics registry. Resolved once; the per-step
/// cost is two `Instant::now` reads and one relaxed atomic record.
fn step_latency() -> &'static Arc<ns_metrics::Histogram> {
    static H: OnceLock<Arc<ns_metrics::Histogram>> = OnceLock::new();
    H.get_or_init(|| ns_metrics::Registry::global().histogram("ns_step_latency_us"))
}

/// Build the initial condition on a patch: the parallel-flow extension of
/// the inflow mean profile (`W(x, r) = W_inflow(r)`), the standard start for
/// spatially developing jet computations. Manufactured-solution runs start
/// exactly on the analytic state instead, so any subsequent departure is
/// pure truncation error.
pub fn initial_field(cfg: &SolverConfig, patch: Patch) -> Field {
    let gas = cfg.effective_gas();
    if let Some(spec) = &cfg.mms {
        return crate::mms::exact_field(spec, patch, &gas);
    }
    let jet = cfg.jet;
    let p0 = gas.pressure(1.0, jet.t_c);
    Field::from_primitives(patch, &gas, |_, r| ns_numerics::gas::Primitive {
        rho: jet.rho(r),
        u: jet.u(r),
        v: 0.0,
        p: p0,
    })
}

/// The jet solver: state, scratch, clock and instrumentation for one patch.
pub struct Solver {
    /// Configuration (grid, regime, version, jet, excitation…).
    pub cfg: SolverConfig,
    gas: GasModel,
    /// Current solution.
    pub field: Field,
    ws: Workspace,
    /// Physical time.
    pub t: f64,
    /// Completed step count.
    pub nstep: u64,
    /// FLOP ledger (Table 1 input).
    pub ledger: FlopLedger,
    dt: f64,
    /// Base (initial) field kept for mean-preserving dissipation.
    base: Option<Box<Field>>,
}

impl Solver {
    /// Serial solver over the whole grid.
    pub fn new(cfg: SolverConfig) -> Self {
        let patch = Patch::whole(cfg.grid.clone());
        Self::on_patch(cfg, patch)
    }

    /// Solver over an axial block (one rank of the distributed solver).
    pub fn on_patch(cfg: SolverConfig, patch: Patch) -> Self {
        assert_eq!(patch.grid, cfg.grid, "patch must belong to the configured grid");
        let gas = cfg.effective_gas();
        let mut field = initial_field(&cfg, patch);
        let mut ws = Workspace::new(&field.patch);
        if let Some(spec) = &cfg.mms {
            assert_eq!(cfg.dissipation, 0.0, "MMS verification runs exclude artificial dissipation");
            ws.mms = Some(Box::new(crate::mms::sources(spec, &field.patch, &gas)));
        }
        let dt = cfg.time_step();
        let mut ledger = FlopLedger::default();
        if field.patch.is_global_left() && cfg.mms.is_none() {
            bc::apply_inflow(&mut field, &cfg, &gas, 0.0, &mut ledger);
        }
        let base = (cfg.dissipation != 0.0).then(|| Box::new(field.clone()));
        Self { cfg, gas, field, ws, t: 0.0, nstep: 0, ledger, dt, base }
    }

    /// Reassemble a solver from checkpointed parts (see
    /// [`crate::checkpoint`]); the clock, step parity and ledger continue
    /// exactly where they were.
    pub fn from_parts(
        cfg: SolverConfig,
        field: Field,
        mut ws: Workspace,
        t: f64,
        nstep: u64,
        ledger: FlopLedger,
    ) -> Self {
        assert_eq!(field.patch.grid, cfg.grid, "field must belong to the configured grid");
        let gas = cfg.effective_gas();
        if let Some(spec) = &cfg.mms {
            if ws.mms.is_none() {
                ws.mms = Some(Box::new(crate::mms::sources(spec, &field.patch, &gas)));
            }
        }
        let dt = cfg.time_step();
        let base = (cfg.dissipation != 0.0).then(|| Box::new(initial_field(&cfg, field.patch.clone())));
        Self { cfg, gas, field, ws, t, nstep, ledger, dt, base }
    }

    /// Effective gas model (inviscid for the Euler regime).
    pub fn gas(&self) -> &GasModel {
        &self.gas
    }

    /// The fixed time step.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Advance one step serially (panics if the solver does not own the
    /// whole grid — distributed ranks must provide their halo).
    pub fn step(&mut self) {
        assert!(
            self.field.patch.is_global_left()
                && self.field.patch.is_global_right()
                && self.field.patch.is_global_bottom()
                && self.field.patch.is_global_top(),
            "serial stepping requires a whole-grid patch; use step_with_halo"
        );
        self.step_with_halo(&mut NoHalo);
    }

    /// Advance one step with the given axial halo exchanger.
    pub fn step_with_halo(&mut self, halo: &mut dyn XHalo) {
        let step_start = std::time::Instant::now();
        let cfg = self.cfg.clone();
        if cfg.adaptive_dt {
            self.ws.timers.start("diag:watchdog");
            let local = diag::max_wave_speed(&self.field, &self.gas);
            self.ws.timers.start("comm:reduce");
            let global = halo.reduce_max(local);
            self.ws.timers.pause();
            self.dt = cfg.cfl * self.cfg.grid.dx.min(self.cfg.grid.dr) / global;
            self.ledger.boundary += (self.field.nxl() * self.field.nr()) as u64 * 6;
        }
        let dt = self.dt;
        let t = self.t;
        if self.nstep.is_multiple_of(2) {
            scheme::r_operator(Variant::L1, &mut self.field, &mut self.ws, &cfg, &self.gas, halo, dt, &mut self.ledger);
            scheme::x_operator(
                Variant::L1,
                &mut self.field,
                &mut self.ws,
                &cfg,
                &self.gas,
                halo,
                t,
                dt,
                &mut self.ledger,
            );
        } else {
            scheme::x_operator(
                Variant::L2,
                &mut self.field,
                &mut self.ws,
                &cfg,
                &self.gas,
                halo,
                t,
                dt,
                &mut self.ledger,
            );
            scheme::r_operator(Variant::L2, &mut self.field, &mut self.ws, &cfg, &self.gas, halo, dt, &mut self.ledger);
        }
        self.ws.timers.start("bc:step");
        if self.field.patch.is_global_left() {
            match &cfg.mms {
                Some(spec) => crate::mms::dirichlet_column(&mut self.field, spec, &self.gas, 0),
                None => bc::apply_inflow(&mut self.field, &cfg, &self.gas, t + dt, &mut self.ledger),
            }
        }
        // The axis regularization imposes the linear model v(r0) = (r0/r1)
        // v(r1); the manufactured v has curvature in r, so under MMS the
        // model would inject an O(dr^2) error at the axis and mask the
        // scheme's order. The manufactured state is exactly odd in v, so the
        // mirror ghost fill alone keeps the axis consistent.
        if cfg.mms.is_none() && self.field.patch.is_global_bottom() {
            bc::axis_regularize(&mut self.field, &self.gas, &mut self.ledger);
        }
        if cfg.dissipation != 0.0 {
            assert!(
                self.field.patch.is_global_left() && self.field.patch.is_global_right(),
                "artificial dissipation is only available in the serial solver"
            );
            dissipation::apply_about(&mut self.field, self.base.as_deref(), cfg.dissipation, &mut self.ledger);
        }
        self.ws.timers.pause();
        self.t += dt;
        self.nstep += 1;
        step_latency().record(step_start.elapsed().as_micros() as u64);
    }

    /// Advance `n` steps.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Advance up to `n` steps serially, sampling the watchdogs into `mon`
    /// on its cadence and stopping early the moment a sample violates the
    /// limits. Returns the number of steps actually taken.
    pub fn run_monitored(&mut self, n: u64, mon: &mut ns_telemetry::HealthMonitor) -> u64 {
        if mon.due(self.nstep) && !mon.observe(self.health_sample()) {
            return 0;
        }
        let mut taken = 0;
        for _ in 0..n {
            self.step();
            taken += 1;
            if mon.due(self.nstep) && !mon.observe(self.health_sample()) {
                break;
            }
        }
        taken
    }

    /// Turn on phase accumulation (see [`ns_telemetry::PhaseTimer`]).
    pub fn enable_phase_timing(&mut self) {
        self.ws.timers.enable();
    }

    /// Turn on phase accumulation *and* timestamped span recording against
    /// the shared origin `t0`.
    pub fn enable_phase_trace(&mut self, t0: std::time::Instant) {
        self.ws.timers.enable_traced(t0);
    }

    /// The accumulated per-phase costs so far.
    pub fn phase_ledger(&self) -> &ns_telemetry::PhaseLedger {
        &self.ws.timers.ledger
    }

    /// Take the accumulated phase ledger and spans, leaving the timer
    /// running with empty accumulators.
    pub fn take_phase_telemetry(&mut self) -> (ns_telemetry::PhaseLedger, Vec<ns_telemetry::PhaseEvent>) {
        self.ws.timers.take()
    }

    /// Integrated invariants of the current state.
    pub fn invariants(&self) -> diag::Invariants {
        diag::invariants(&self.field)
    }

    /// One watchdog sample of the current state (all diagnostics gathered
    /// by the fused [`diag::watchdogs`] pass plus the invariants).
    pub fn health_sample(&self) -> ns_telemetry::HealthSample {
        let w = diag::watchdogs(&self.field, &self.gas);
        let inv = diag::invariants(&self.field);
        ns_telemetry::HealthSample {
            step: self.nstep,
            t: self.t,
            dt: self.dt,
            max_mach: w.max_mach,
            max_wave_speed: w.max_wave_speed,
            min_rho: w.min_rho,
            min_p: w.min_p,
            mass: inv.mass,
            energy: inv.energy,
            finite: w.finite,
        }
    }

    /// True while the state is finite and positivity holds.
    pub fn healthy(&self) -> bool {
        let w = diag::watchdogs(&self.field, &self.gas);
        w.finite && w.min_rho > 0.0 && w.min_p > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Regime, SolverConfig};
    use ns_numerics::Grid;

    #[test]
    fn solver_initializes_with_jet_profile() {
        let cfg = SolverConfig::paper(Grid::small(), Regime::NavierStokes);
        let s = Solver::new(cfg);
        let gas = *s.gas();
        let core = s.field.primitive(10, 0, &gas);
        let ambient = s.field.primitive(10, s.field.nr() - 1, &gas);
        assert!(core.u > 1.3, "jet core fast, got {}", core.u);
        assert!(ambient.u < 0.5, "ambient slow, got {}", ambient.u);
        assert!(core.rho < ambient.rho, "heated core is lighter");
    }

    #[test]
    fn steps_advance_clock_and_stay_healthy() {
        for regime in [Regime::Euler, Regime::NavierStokes] {
            let cfg = SolverConfig::paper(Grid::small(), regime);
            let mut s = Solver::new(cfg);
            let dt = s.dt();
            s.run(10);
            assert_eq!(s.nstep, 10);
            assert!((s.t - 10.0 * dt).abs() < 1e-12);
            assert!(s.healthy(), "{regime:?} went unhealthy");
        }
    }

    #[test]
    fn ledger_grows_linearly_with_steps() {
        let cfg = SolverConfig::paper(Grid::small(), Regime::NavierStokes);
        let mut s = Solver::new(cfg);
        s.run(2);
        let after2 = s.ledger.total();
        s.run(2);
        let after4 = s.ledger.total();
        // cost of steps 3-4 equals cost of steps 1-2 minus the one-time
        // initialization boundary work
        let d1 = after2;
        let d2 = after4 - after2;
        assert!(d2 > 0);
        let rel = (d1 as f64 - d2 as f64).abs() / d2 as f64;
        assert!(rel < 0.01, "per-step cost should be steady, rel diff {rel}");
    }

    #[test]
    fn euler_costs_less_than_navier_stokes() {
        let mut ns = Solver::new(SolverConfig::paper(Grid::small(), Regime::NavierStokes));
        let mut eu = Solver::new(SolverConfig::paper(Grid::small(), Regime::Euler));
        ns.run(4);
        eu.run(4);
        let ratio = eu.ledger.total() as f64 / ns.ledger.total() as f64;
        assert!(ratio < 0.8, "Euler should be much cheaper, ratio {ratio}");
        assert!(ratio > 0.3, "but not free, ratio {ratio}");
    }

    #[test]
    fn excitation_perturbs_the_flow() {
        let mk = |enabled: bool| {
            let mut cfg = SolverConfig::paper(Grid::small(), Regime::Euler);
            cfg.excitation.enabled = enabled;
            let mut s = Solver::new(cfg);
            s.run(20);
            s
        };
        let on = mk(true);
        let off = mk(false);
        let d = on.field.max_diff(&off.field);
        assert!(d > 1e-8, "excitation must do something, diff {d}");
    }

    #[test]
    fn adaptive_dt_tracks_the_flow_and_outruns_the_static_bound() {
        let mut cfg = SolverConfig::paper(Grid::small(), Regime::Euler);
        let static_dt = cfg.time_step();
        cfg.adaptive_dt = true;
        let mut s = Solver::new(cfg);
        s.run(5);
        assert!(s.healthy());
        // the static estimate pads the wave speed by 20%; the adaptive step
        // measures it, so it must be larger (same CFL)
        assert!(s.dt() > static_dt, "adaptive {} vs static {static_dt}", s.dt());
        // and it respects the true CFL bound
        let gas = *s.gas();
        let wave = diag::max_wave_speed(&s.field, &gas);
        let cfl_eff = s.dt() * wave / s.cfg.grid.dx.min(s.cfg.grid.dr);
        assert!(cfl_eff <= s.cfg.cfl * 1.0001, "effective CFL {cfl_eff}");
    }

    #[test]
    fn monitored_run_samples_on_cadence_and_times_phases() {
        let cfg = SolverConfig::paper(Grid::small(), Regime::Euler);
        let mut s = Solver::new(cfg);
        s.enable_phase_timing();
        let mut mon = ns_telemetry::HealthMonitor::new(ns_telemetry::HealthConfig { cadence: 5, ..Default::default() });
        let taken = s.run_monitored(10, &mut mon);
        assert_eq!(taken, 10);
        assert!(mon.healthy());
        // sampled at steps 0, 5, 10
        assert_eq!(mon.samples.len(), 3);
        assert!(mon.samples[2].max_mach > 1.0);
        // every workload-model phase label showed up in the measured ledger
        let ledger = s.phase_ledger();
        for label in [
            "r:prims",
            "r:flux",
            "r:predict",
            "r:prims2",
            "r:flux2",
            "r:correct",
            "x:prims",
            "x:flux",
            "x:predict",
            "x:prims2",
            "x:flux2",
            "x:correct",
            "bc:step",
        ] {
            assert!(ledger.by_label.contains_key(label), "missing phase {label}");
        }
        assert!(ledger.total_seconds() > 0.0);
    }

    #[test]
    fn monitored_run_aborts_on_violated_limits() {
        let cfg = SolverConfig::paper(Grid::small(), Regime::Euler);
        let mut s = Solver::new(cfg);
        // the jet core is Mach 1.5: instant violation
        let limits = ns_telemetry::HealthLimits { max_mach: 0.1, ..Default::default() };
        let mut mon = ns_telemetry::HealthMonitor::new(ns_telemetry::HealthConfig { cadence: 1, limits });
        let taken = s.run_monitored(10, &mut mon);
        assert_eq!(taken, 0, "step-0 sample must already abort");
        assert!(!mon.healthy());
        assert!(mon.abort.as_deref().unwrap().contains("Mach"));
    }

    #[test]
    fn every_step_records_into_the_latency_histogram() {
        let before = ns_metrics::Registry::global().snapshot();
        let cfg = SolverConfig::paper(Grid::small(), Regime::Euler);
        let mut s = Solver::new(cfg);
        s.run(3);
        let delta = ns_metrics::Registry::global().snapshot().diff(&before);
        let h = delta.histograms.get("ns_step_latency_us").expect("histogram registered");
        assert!(h.count >= 3, "3 steps must record >= 3 samples, got {}", h.count);
    }

    #[test]
    fn mass_is_nearly_conserved_over_short_runs() {
        let mut cfg = SolverConfig::paper(Grid::small(), Regime::Euler);
        cfg.excitation.enabled = false;
        let mut s = Solver::new(cfg);
        let m0 = s.invariants().mass;
        s.run(20);
        let m1 = s.invariants().mass;
        // open boundaries admit small flux imbalance, but nothing dramatic
        assert!((m1 - m0).abs() / m0 < 1e-3, "mass drifted {} -> {}", m0, m1);
    }
}
