//! Boundary conditions and ghost-layer fills.
//!
//! * **Inflow** (`x = 0`): Dirichlet mean jet profile plus the modal
//!   excitation of paper Section 3 (our analytic substitute for the
//!   linear-stability eigenfunctions — see DESIGN.md).
//! * **Outflow** (`x = L`): Hayder–Turkel characteristic conditions; for
//!   subsonic outflow the incoming characteristic satisfies
//!   `p_t - rho c u_t = 0`, the remaining `R_i` are evaluated from interior
//!   one-sided derivatives; for supersonic outflow everything is upwinded
//!   from the interior.
//! * **Axis** (`r = 0`): symmetry ghosts across the staggered axis
//!   (`rho, u, p, T` even; `v` odd).
//! * **Far field** (`r = L_r`): extrapolated velocity/density with pinned
//!   static pressure.
//! * **Artificial points**: fluxes are cubically extrapolated to ghost
//!   points outside global boundaries, exactly as the paper prescribes.

use crate::config::{Excitation, SolverConfig};
use crate::field::{Field, FluxField, PrimField, NG};
use crate::opcount::FlopLedger;
use ns_numerics::extrap::{cubic_extrap_1, cubic_extrap_2};
use ns_numerics::gas::Primitive;
use ns_numerics::profile::ShearLayer;
use ns_numerics::{Array2, GasModel};

/// Mirror parity of the r-weighted flux components `G = r g` across the
/// axis: `(even, even, odd, even)`.
pub const G_PARITY: [f64; 4] = [1.0, 1.0, -1.0, 1.0];

/// Mirror parity of the r-weighted state `Q = r q` across the axis:
/// `(odd, odd, even, odd)` (the `r` weight itself is odd).
pub const Q_PARITY: [f64; 4] = [-1.0, -1.0, 1.0, -1.0];

/// Inflow primitive state at radius `r` and time `t`: tanh mean profile with
/// a shear-layer-localized modal perturbation on `u`, `v`, `rho` and `p`.
pub fn inflow_state(jet: &ShearLayer, exc: &Excitation, gas: &GasModel, r: f64, t: f64) -> Primitive {
    let rho_m = jet.rho(r);
    let u_m = jet.u(r);
    let p_m = gas.pressure(1.0, jet.t_c); // constant static pressure
    if !exc.enabled || exc.level == 0.0 {
        return Primitive { rho: rho_m, u: u_m, v: 0.0, p: p_m };
    }
    let omega = exc.omega(jet.u_c);
    let phase = omega * t;
    let arg = (r - 1.0) / exc.width;
    let shape = (-arg * arg).exp();
    let amp = exc.level * jet.u_c * shape;
    let du = amp * phase.cos();
    let dv = amp * phase.sin();
    // Acoustic-mode scaling: p' = rho c u', rho' = p'/c^2 with local c.
    let c = gas.sound_speed(rho_m, p_m);
    let dp = rho_m * c * du;
    let drho = dp / (c * c);
    Primitive { rho: rho_m + drho, u: u_m + du, v: dv, p: p_m + dp }
}

/// Impose the inflow profile on the global-left boundary column at time `t`.
pub fn apply_inflow(field: &mut Field, cfg: &SolverConfig, gas: &GasModel, t: f64, ledger: &mut FlopLedger) {
    debug_assert!(field.patch.is_global_left());
    for j in 0..field.nr() {
        let r = field.patch.r(j);
        let w = inflow_state(&cfg.jet, &cfg.excitation, gas, r, t);
        field.set_primitive(0, j, gas, &w);
    }
    ledger.boundary += field.nr() as u64 * 40;
}

/// Fill the axis-side ghost rows of the primitive planes by symmetry
/// (`v` odd, everything else even). Covers every column including ghosts.
pub fn mirror_prims_axis(prim: &mut PrimField) {
    let ni = prim.rho.ni();
    for i in 0..ni {
        mirror_prims_axis_row(prim, i);
    }
}

/// Axis-symmetry ghost fill of one axial station `i` (raw index). The
/// per-station building block of [`mirror_prims_axis`], used by the V6
/// fused sweep to fill a station's ghosts while its row is still hot.
#[inline]
pub fn mirror_prims_axis_row(prim: &mut PrimField, i: usize) {
    for g in 0..NG {
        let dst = NG - 1 - g;
        let src = NG + g;
        prim.rho.set(i, dst, prim.rho.at(i, src));
        prim.u.set(i, dst, prim.u.at(i, src));
        prim.v.set(i, dst, -prim.v.at(i, src));
        prim.p.set(i, dst, prim.p.at(i, src));
        prim.t.set(i, dst, prim.t.at(i, src));
    }
}

/// Fill the far-field-side ghost rows of the primitive planes by linear
/// extrapolation from the last two interior rows.
pub fn extrap_prims_top(prim: &mut PrimField, nr: usize) {
    let ni = prim.rho.ni();
    for i in 0..ni {
        extrap_prims_top_row(prim, i, nr);
    }
}

/// Far-field ghost fill of one axial station `i` (raw index). The
/// per-station building block of [`extrap_prims_top`].
#[inline]
pub fn extrap_prims_top_row(prim: &mut PrimField, i: usize, nr: usize) {
    let a = NG + nr - 1;
    let b = NG + nr - 2;
    for g in 0..NG {
        let dst = NG + nr + g;
        let w = (g + 1) as f64;
        for pl in [&mut prim.rho, &mut prim.u, &mut prim.v, &mut prim.p, &mut prim.t] {
            let val = pl.at(i, a) + w * (pl.at(i, a) - pl.at(i, b));
            pl.set(i, dst, val);
        }
    }
}

/// Cubic-extrapolate the flux planes into the ghost columns outside an owned
/// global boundary ("artificial points", paper Section 3).
pub fn extrap_flux_x(flux: &mut FluxField, nxl: usize, nr: usize, left: bool, right: bool, ledger: &mut FlopLedger) {
    let mut work = 0u64;
    for c in 0..4 {
        for j in 0..nr {
            let jj = (j + NG) as isize;
            if left {
                let (f0, f1, f2, f3) = (
                    flux.at(c, 3, jj - NG as isize),
                    flux.at(c, 2, jj - NG as isize),
                    flux.at(c, 1, jj - NG as isize),
                    flux.at(c, 0, jj - NG as isize),
                );
                flux.set(c, -1, jj - NG as isize, cubic_extrap_1(f0, f1, f2, f3));
                flux.set(c, -2, jj - NG as isize, cubic_extrap_2(f0, f1, f2, f3));
                work += 14;
            }
            if right {
                let n = nxl as isize;
                let (f0, f1, f2, f3) = (
                    flux.at(c, n - 4, jj - NG as isize),
                    flux.at(c, n - 3, jj - NG as isize),
                    flux.at(c, n - 2, jj - NG as isize),
                    flux.at(c, n - 1, jj - NG as isize),
                );
                flux.set(c, n, jj - NG as isize, cubic_extrap_1(f0, f1, f2, f3));
                flux.set(c, n + 1, jj - NG as isize, cubic_extrap_2(f0, f1, f2, f3));
                work += 14;
            }
        }
    }
    ledger.boundary += work;
}

/// Fill the radial-flux ghost rows: axis side by parity mirror (exact for a
/// symmetric solution), far-field side by cubic extrapolation.
pub fn fill_rflux_ghosts(flux: &mut FluxField, nxl: usize, nr: usize, ledger: &mut FlopLedger) {
    fill_rflux_ghosts_sides(flux, nxl, nr, true, true, ledger);
}

/// Per-side variant of [`fill_rflux_ghosts`] for pencil patches: a patch
/// fills only the radial boundaries it owns; internal edges get their ghost
/// rows from neighbour exchange instead.
pub fn fill_rflux_ghosts_sides(
    flux: &mut FluxField,
    nxl: usize,
    nr: usize,
    bottom: bool,
    top: bool,
    ledger: &mut FlopLedger,
) {
    for c in 0..4 {
        let s = G_PARITY[c];
        for i in 0..nxl {
            let ii = i as isize;
            if bottom {
                for g in 0..NG as isize {
                    flux.set(c, ii, -1 - g, s * flux.at(c, ii, g));
                }
            }
            if top {
                let n = nr as isize;
                let (f0, f1, f2, f3) =
                    (flux.at(c, ii, n - 4), flux.at(c, ii, n - 3), flux.at(c, ii, n - 2), flux.at(c, ii, n - 1));
                flux.set(c, ii, n, cubic_extrap_1(f0, f1, f2, f3));
                flux.set(c, ii, n + 1, cubic_extrap_2(f0, f1, f2, f3));
            }
        }
    }
    let sides = u64::from(bottom) + u64::from(top);
    ledger.boundary += (nxl * 4 * 7) as u64 * sides;
}

/// Characteristic (Hayder–Turkel) outflow update of the global-right
/// boundary column, integrating the boundary ODEs over `dt` from the
/// pre-step state.
///
/// Amplitude variations are evaluated with second-order one-sided interior
/// derivatives; for subsonic outflow the incoming amplitude is zeroed
/// (`p_t - rho c u_t = 0`), for supersonic outflow all are upwinded.
pub fn outflow_characteristic(field: &mut Field, prim: &PrimField, gas: &GasModel, dt: f64, ledger: &mut FlopLedger) {
    debug_assert!(field.patch.is_global_right());
    let nxl = field.nxl();
    let nr = field.nr();
    let i = nxl - 1;
    let ii = i + NG;
    let inv_2dx = 1.0 / (2.0 * field.patch.grid.dx);
    let gm1 = gas.gamma - 1.0;

    for j in 0..nr {
        let jj = j + NG;
        let one_sided =
            |a: &Array2| -> f64 { (3.0 * a.at(ii, jj) - 4.0 * a.at(ii - 1, jj) + a.at(ii - 2, jj)) * inv_2dx };
        let rho = prim.rho.at(ii, jj);
        let u = prim.u.at(ii, jj);
        let v = prim.v.at(ii, jj);
        let p = prim.p.at(ii, jj);
        let c = gas.sound_speed(rho, p);
        let rho_x = one_sided(&prim.rho);
        let u_x = one_sided(&prim.u);
        let v_x = one_sided(&prim.v);
        let p_x = one_sided(&prim.p);

        let l1 = if u >= c {
            (u - c) * (p_x - rho * c * u_x)
        } else {
            0.0 // nonreflecting: incoming amplitude suppressed
        };
        let l2 = u * (c * c * rho_x - p_x);
        let l3 = u * v_x;
        let l4 = (u + c) * (p_x + rho * c * u_x);

        let p_t = -0.5 * (l1 + l4);
        let u_t = -(l4 - l1) / (2.0 * rho * c);
        let rho_t = -(l2 + 0.5 * (l1 + l4)) / (c * c);
        let v_t = -l3;

        // Convert to conservative time derivatives (paper Section 3).
        let m_t = rho * u_t + u * rho_t;
        let n_t = rho * v_t + v * rho_t;
        let e_t = p_t / gm1 + 0.5 * (u * u + v * v) * rho_t + rho * (u * u_t + v * v_t);

        let r = field.patch.r(j);
        let q = field.qvec(i, j);
        field.set_qvec(i, j, [q[0] + dt * r * rho_t, q[1] + dt * r * m_t, q[2] + dt * r * n_t, q[3] + dt * r * e_t]);
    }
    ledger.boundary += nr as u64 * 64;
}

/// Axis regularity condition, applied once per step.
///
/// Smooth axisymmetric fields have `v = a r + O(r^3)` at the axis. The
/// alternating one-sided 2-4 stencils are strongly asymmetric through the
/// mirror ghosts (for an even flux the backward stencil at the first row
/// evaluates to a third of the true derivative), which slowly pumps the
/// odd radial-velocity mode in the first row. Re-imposing the linear axis
/// behaviour `v(r_0) = (r_0 / r_1) v(r_1)` removes that degree of freedom
/// without touching any symmetric mode — for `v = 0` states it is exactly
/// a no-op, so the parallel-jet steady state and all uniform-flow
/// preservation properties are untouched. Purely local: identical in the
/// serial and distributed solvers.
pub fn axis_regularize(field: &mut Field, gas: &GasModel, ledger: &mut FlopLedger) {
    let ratio = field.patch.r(0) / field.patch.r(1);
    for i in 0..field.nxl() {
        let w1 = field.primitive(i, 1, gas);
        let mut w0 = field.primitive(i, 0, gas);
        w0.v = ratio * w1.v;
        field.set_primitive(i, 0, gas, &w0);
    }
    ledger.boundary += field.nxl() as u64 * 30;
}

/// Far-field treatment of the top radial row: extrapolate density and
/// velocity from below, pin the static pressure to the free stream.
pub fn farfield_top(field: &mut Field, gas: &GasModel, p_inf: f64, ledger: &mut FlopLedger) {
    let nr = field.nr();
    let j = nr - 1;
    for i in 0..field.nxl() {
        let below = field.primitive(i, j - 1, gas);
        let w = Primitive { rho: below.rho, u: below.u, v: below.v, p: p_inf };
        field.set_primitive(i, j, gas, &w);
    }
    ledger.boundary += field.nxl() as u64 * 20;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Regime, SolverConfig};
    use crate::field::Patch;
    use ns_numerics::Grid;

    fn cfg() -> SolverConfig {
        SolverConfig::paper(Grid::small(), Regime::NavierStokes)
    }

    #[test]
    fn inflow_without_excitation_is_mean_profile() {
        let cfg = cfg();
        let gas = cfg.effective_gas();
        let mut exc = cfg.excitation;
        exc.enabled = false;
        let w = inflow_state(&cfg.jet, &exc, &gas, 0.5, 3.7);
        assert!((w.u - cfg.jet.u(0.5)).abs() < 1e-14);
        assert_eq!(w.v, 0.0);
    }

    #[test]
    fn excitation_is_time_periodic_and_shear_localized() {
        let cfg = cfg();
        let gas = cfg.effective_gas();
        let omega = cfg.excitation.omega(cfg.jet.u_c);
        let period = 2.0 * std::f64::consts::PI / omega;
        let a = inflow_state(&cfg.jet, &cfg.excitation, &gas, 1.0, 0.3);
        let b = inflow_state(&cfg.jet, &cfg.excitation, &gas, 1.0, 0.3 + period);
        assert!((a.u - b.u).abs() < 1e-10);
        assert!((a.p - b.p).abs() < 1e-10);
        // perturbation decays away from the lip line
        let far = inflow_state(&cfg.jet, &cfg.excitation, &gas, 4.5, 0.3);
        assert!((far.u - cfg.jet.u(4.5)).abs() < 1e-12);
    }

    #[test]
    fn mirror_prims_respects_parity() {
        let cfg = cfg();
        let patch = Patch::whole(cfg.grid.clone());
        let mut prim = PrimField::zeros(&patch);
        for i in 0..prim.rho.ni() {
            for j in 0..prim.rho.nj() {
                prim.rho.set(i, j, (i + 2 * j) as f64);
                prim.v.set(i, j, (i * j + 1) as f64);
            }
        }
        mirror_prims_axis(&mut prim);
        for i in 0..prim.rho.ni() {
            assert_eq!(prim.rho.at(i, NG - 1), prim.rho.at(i, NG));
            assert_eq!(prim.rho.at(i, NG - 2), prim.rho.at(i, NG + 1));
            assert_eq!(prim.v.at(i, NG - 1), -prim.v.at(i, NG));
            assert_eq!(prim.v.at(i, NG - 2), -prim.v.at(i, NG + 1));
        }
    }

    #[test]
    fn flux_x_extrapolation_exact_on_cubic_profiles() {
        let cfg = cfg();
        let patch = Patch::whole(cfg.grid.clone());
        let mut flux = FluxField::zeros(&patch);
        let f = |i: f64| 0.3 * i * i * i - i * i + 2.0;
        for c in 0..4 {
            for i in 0..patch.nxl {
                for j in 0..patch.nr() {
                    flux.set(c, i as isize, j as isize, f(i as f64));
                }
            }
        }
        let mut ledger = FlopLedger::default();
        extrap_flux_x(&mut flux, patch.nxl, patch.nr(), true, true, &mut ledger);
        let n = patch.nxl as f64;
        for c in 0..4 {
            assert!((flux.at(c, -1, 5) - f(-1.0)).abs() < 1e-8);
            assert!((flux.at(c, -2, 5) - f(-2.0)).abs() < 1e-8);
            assert!((flux.at(c, patch.nxl as isize, 5) - f(n)).abs() < 1e-8);
            assert!((flux.at(c, patch.nxl as isize + 1, 5) - f(n + 1.0)).abs() < 1e-8);
        }
        assert!(ledger.boundary > 0);
    }

    #[test]
    fn rflux_ghosts_follow_parity() {
        let cfg = cfg();
        let patch = Patch::whole(cfg.grid.clone());
        let mut flux = FluxField::zeros(&patch);
        for c in 0..4 {
            for i in 0..patch.nxl {
                for j in 0..patch.nr() {
                    flux.set(c, i as isize, j as isize, ((c + 1) * (j + 1)) as f64 + i as f64);
                }
            }
        }
        let mut ledger = FlopLedger::default();
        fill_rflux_ghosts(&mut flux, patch.nxl, patch.nr(), &mut ledger);
        for (c, s) in G_PARITY.iter().enumerate() {
            assert_eq!(flux.at(c, 7, -1), s * flux.at(c, 7, 0));
            assert_eq!(flux.at(c, 7, -2), s * flux.at(c, 7, 1));
        }
    }

    #[test]
    fn outflow_characteristic_is_quiescent_on_uniform_flow() {
        let cfg = cfg();
        let gas = cfg.effective_gas();
        let patch = Patch::whole(cfg.grid.clone());
        let w0 = Primitive { rho: 1.0, u: 0.4, v: 0.0, p: gas.pressure(1.0, 1.0) };
        let mut field = Field::from_primitives(patch.clone(), &gas, |_, _| w0);
        let mut prim = PrimField::zeros(&patch);
        let mut ledger = FlopLedger::default();
        crate::kernels::compute_prims(crate::config::Version::V5, &field, &mut prim, &gas, &mut ledger);
        let before = field.clone();
        outflow_characteristic(&mut field, &prim, &gas, 1e-2, &mut ledger);
        assert!(field.max_diff(&before) < 1e-13, "uniform flow must not change");
    }

    #[test]
    fn outflow_characteristic_advects_entropy_out() {
        // density bump moving with the flow: rho_t must be -u rho_x < 0 when
        // rho increases toward the boundary.
        let cfg = cfg();
        let gas = cfg.effective_gas();
        let patch = Patch::whole(cfg.grid.clone());
        let lx = cfg.grid.lx;
        let p0 = gas.pressure(1.0, 1.0);
        let mut field = Field::from_primitives(patch.clone(), &gas, |x, _| Primitive {
            rho: 1.0 + 0.1 * (x / lx),
            u: 0.4,
            v: 0.0,
            p: p0,
        });
        let mut prim = PrimField::zeros(&patch);
        let mut ledger = FlopLedger::default();
        crate::kernels::compute_prims(crate::config::Version::V5, &field, &mut prim, &gas, &mut ledger);
        let i = field.nxl() - 1;
        let rho_before = field.primitive(i, 3, &gas).rho;
        outflow_characteristic(&mut field, &prim, &gas, 1e-2, &mut ledger);
        let rho_after = field.primitive(i, 3, &gas).rho;
        assert!(rho_after < rho_before, "outgoing entropy gradient must reduce rho");
        // pressure stays (no acoustic content in this state)
        let p_after = field.primitive(i, 3, &gas).p;
        assert!((p_after - p0).abs() < 1e-6);
    }

    #[test]
    fn farfield_pins_pressure() {
        let cfg = cfg();
        let gas = cfg.effective_gas();
        let patch = Patch::whole(cfg.grid.clone());
        let mut field = Field::from_primitives(patch.clone(), &gas, |x, r| Primitive {
            rho: 1.0 + 0.01 * x,
            u: 0.3,
            v: 0.01,
            p: gas.pressure(1.0, 1.0) * (1.0 + 0.05 * r),
        });
        let p_inf = gas.pressure(1.0, 1.0);
        let mut ledger = FlopLedger::default();
        farfield_top(&mut field, &gas, p_inf, &mut ledger);
        let nr = field.nr();
        for i in 0..field.nxl() {
            let w = field.primitive(i, nr - 1, &gas);
            assert!((w.p - p_inf).abs() < 1e-12);
            let below = field.primitive(i, nr - 2, &gas);
            assert!((w.rho - below.rho).abs() < 1e-12);
        }
    }
}
