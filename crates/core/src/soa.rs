//! V7 structure-of-arrays compute path: lane-aligned SoA buffers, explicit
//! fixed-width [`LaneVec`] arithmetic, and cache-blocked (radially tiled)
//! fused sweeps.
//!
//! ## Layout
//!
//! The solver state stays in the AoS-of-planes [`Field`]; this module owns a
//! *sweep-scoped* SoA arena ([`SoaWs`]) for the recovered primitives that the
//! V7 operator path converts out of only at sweep boundaries (immediately
//! adjacent to the halo exchange, which is the only other place the rows are
//! touched), so the runtime, comm framing, checkpoint and recovery layers
//! never see it:
//!
//! ```text
//!            AoS Field (per component, rows strided nr + 2 NG)
//!   q[0]: [..|................|..]   <- read in place by lane loads
//!   q[1]: [..|................|..]      (loads need no padding)
//!
//!            SoA arena (station-blocked, stride = round_up(nr + 2 NG, LANES))
//!   prims i:     [rho pad][u pad][v pad][p pad][t pad]
//!   prims i+1:   [rho pad][u pad][v pad][p pad][t pad]
//! ```
//!
//! The conservative inputs are deliberately *not* copied into an SoA mirror:
//! only the primitive *stores* need lane padding, and a staged copy of `q`
//! measured as a full extra round-trip of the field through memory per sweep
//! (~25% of sweep time on the 250×100 grid). Everything one station's
//! recover→ghost-fill→flux pipeline touches is a handful of *contiguous*
//! rows, and the radial axis is tiled
//! ([`SolverConfig::tile_r`](crate::config::SolverConfig::tile_r)) so those
//! rows stay cache-resident even on tall grids.
//!
//! ## Lanes and bitwise policy
//!
//! [`LaneVec<N>`] is an explicit `[f64; N]` short-vector type (no nightly,
//! no intrinsics) whose operators are fully unrolled elementwise loops with
//! constant trip counts — the shape LLVM reliably turns into packed IEEE
//! ops. Each lane is an independent grid point: V7 performs *exactly* the
//! per-point expression trees of the V6 kernels (same operations, same
//! association), never reassociates across lanes, and has no cross-lane
//! reductions, so V7 results are bitwise equal to V6 (and hence V5) — the
//! oracle and the property tests assert this exactly. Ranges that are not a
//! whole number of lanes are finished by a *shifted* final lane block
//! (recomputing up to `LANES - 1` points bit-identically) instead of a
//! scalar remainder loop; ranges narrower than one lane fall back to
//! single-lane (`N = 1`) blocks of the same generic body.
//!
//! Direction, viscosity and source-plane presence are const generics of the
//! flux body, so the hot loops carry no per-point branches.

use crate::field::{Field, FluxField, Patch, PrimField, NG};
use crate::kernels::{flux_needs, EdgeFlags, FluxDir, LANES};
use crate::opcount::{self, FlopLedger};
use ns_numerics::{Array2, GasModel};

/// Round `n` up to the next multiple of [`LANES`].
#[inline(always)]
fn pad(n: usize) -> usize {
    n.div_ceil(LANES) * LANES
}

// ---------------------------------------------------------------------------
// LaneVec
// ---------------------------------------------------------------------------

/// Fixed-width vector of `N` lanes, each an independent grid point.
///
/// All arithmetic is elementwise with constant trip counts (fully unrolled
/// by the optimizer); there are intentionally **no** horizontal operations,
/// so using `LaneVec` can never reassociate a reduction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LaneVec<const N: usize>(pub [f64; N]);

impl<const N: usize> LaneVec<N> {
    /// Broadcast a scalar into every lane.
    #[inline(always)]
    pub fn splat(x: f64) -> Self {
        Self([x; N])
    }

    /// Load `N` contiguous lanes of `s` starting at `at`.
    #[inline(always)]
    pub fn load(s: &[f64], at: usize) -> Self {
        Self(s[at..at + N].try_into().unwrap())
    }

    /// Store the lanes into `s` starting at `at`.
    #[inline(always)]
    pub fn store(self, s: &mut [f64], at: usize) {
        s[at..at + N].copy_from_slice(&self.0);
    }

    /// Elementwise reciprocal `1.0 / x` (a true IEEE divide per lane).
    #[inline(always)]
    pub fn recip(self) -> Self {
        let mut o = [0.0; N];
        for l in 0..N {
            o[l] = 1.0 / self.0[l];
        }
        Self(o)
    }
}

macro_rules! lane_binop {
    ($trait:ident, $fn:ident, $op:tt) => {
        impl<const N: usize> std::ops::$trait for LaneVec<N> {
            type Output = Self;
            #[inline(always)]
            fn $fn(self, rhs: Self) -> Self {
                let mut o = [0.0; N];
                for l in 0..N {
                    o[l] = self.0[l] $op rhs.0[l];
                }
                Self(o)
            }
        }
    };
}
lane_binop!(Add, add, +);
lane_binop!(Sub, sub, -);
lane_binop!(Mul, mul, *);
lane_binop!(Div, div, /);

impl<const N: usize> std::ops::Neg for LaneVec<N> {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        let mut o = [0.0; N];
        for l in 0..N {
            o[l] = -self.0[l];
        }
        Self(o)
    }
}

// ---------------------------------------------------------------------------
// SoA containers
// ---------------------------------------------------------------------------

/// The four conservative components in a lane-aligned, station-blocked SoA
/// arena: for each axial station (ghosts included) the four component rows
/// sit contiguously, each padded to a whole number of lanes. Conversions to
/// and from the AoS [`Field`] are bitwise copies (property-tested, NaN
/// payloads included).
#[derive(Clone, Debug)]
pub struct SoaField {
    data: Vec<f64>,
    ni: usize,
    nj: usize,
    stride: usize,
}

impl SoaField {
    /// Zeroed arena shaped for `patch` (ghosts included).
    pub fn zeros(patch: &Patch) -> Self {
        let ni = patch.nxl + 2 * NG;
        let nj = patch.nr() + 2 * NG;
        let stride = pad(nj);
        Self { data: vec![0.0; ni * 4 * stride], ni, nj, stride }
    }

    /// Lane-padded row stride.
    #[inline(always)]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// `(stations, radial points)`, ghosts included.
    #[inline(always)]
    pub fn shape(&self) -> (usize, usize) {
        (self.ni, self.nj)
    }

    #[inline(always)]
    fn base(&self, ii: usize, c: usize) -> usize {
        debug_assert!(ii < self.ni && c < 4);
        (ii * 4 + c) * self.stride
    }

    /// Row of component `c` at raw station `ii` (length [`Self::stride`]).
    #[inline(always)]
    pub fn row(&self, ii: usize, c: usize) -> &[f64] {
        let b = self.base(ii, c);
        &self.data[b..b + self.stride]
    }

    /// Mutable counterpart of [`Self::row`].
    #[inline(always)]
    pub fn row_mut(&mut self, ii: usize, c: usize) -> &mut [f64] {
        let b = self.base(ii, c);
        &mut self.data[b..b + self.stride]
    }

    /// Convert a whole AoS field (ghosts included) into a fresh SoA arena.
    pub fn from_field(field: &Field) -> Self {
        let mut s = Self::zeros(&field.patch);
        s.stage(field, 0..s.ni);
        s
    }

    /// Bitwise-copy the raw station rows `raw_range` of `field` into the
    /// arena (the AoS→SoA boundary of the V7 sweep).
    pub fn stage(&mut self, field: &Field, raw_range: std::ops::Range<usize>) {
        debug_assert!(raw_range.end <= self.ni);
        for ii in raw_range {
            for c in 0..4 {
                let src = field.q[c].row(ii);
                self.row_mut(ii, c)[..src.len()].copy_from_slice(src);
            }
        }
    }

    /// Bitwise-copy the arena back into an AoS field (the SoA→AoS boundary).
    pub fn to_field(&self, field: &mut Field) {
        assert_eq!((field.nxl() + 2 * NG, field.nr() + 2 * NG), (self.ni, self.nj));
        for ii in 0..self.ni {
            for c in 0..4 {
                let nj = self.nj;
                let src = &self.row(ii, c)[..nj];
                field.q[c].row_mut(ii).copy_from_slice(src);
            }
        }
    }
}

/// Primitive planes (`rho, u, v, p, t`) in the same station-blocked SoA
/// layout as [`SoaField`]; the V7 sweep recovers into these and the flux
/// stencils read them back while the station block is still in L1.
#[derive(Clone, Debug)]
pub struct SoaPrims {
    data: Vec<f64>,
    ni: usize,
    nj: usize,
    stride: usize,
}

/// Component order inside a [`SoaPrims`] station block.
const P_RHO: usize = 0;
const P_U: usize = 1;
const P_V: usize = 2;
const P_P: usize = 3;
const P_T: usize = 4;

impl SoaPrims {
    /// Zeroed arena shaped for `patch` (ghosts included).
    pub fn zeros(patch: &Patch) -> Self {
        let ni = patch.nxl + 2 * NG;
        let nj = patch.nr() + 2 * NG;
        let stride = pad(nj);
        Self { data: vec![0.0; ni * 5 * stride], ni, nj, stride }
    }

    #[inline(always)]
    fn base(&self, ii: usize, comp: usize) -> usize {
        debug_assert!(ii < self.ni && comp < 5);
        (ii * 5 + comp) * self.stride
    }

    /// Row of primitive component `comp` at raw station `ii`.
    #[inline(always)]
    fn row(&self, ii: usize, comp: usize) -> &[f64] {
        let b = self.base(ii, comp);
        &self.data[b..b + self.stride]
    }

    /// The five rows of one station, split for simultaneous mutation.
    #[inline(always)]
    fn station_rows_mut(&mut self, ii: usize) -> [&mut [f64]; 5] {
        let b = self.base(ii, 0);
        let s = self.stride;
        let block = &mut self.data[b..b + 5 * s];
        let (rho, rest) = block.split_at_mut(s);
        let (u, rest) = rest.split_at_mut(s);
        let (v, rest) = rest.split_at_mut(s);
        let (p, t) = rest.split_at_mut(s);
        [rho, u, v, p, t]
    }

    /// Import one precomputed AoS primitive station (ghost rows included) —
    /// used for the boundary stations that [`crate::kernels::fused_boundary_prims`]
    /// computed ahead of the halo post.
    fn import_station(&mut self, prim: &PrimField, ii: usize) {
        let nj = self.nj;
        let [rho, u, v, p, t] = self.station_rows_mut(ii);
        rho[..nj].copy_from_slice(prim.rho.row(ii));
        u[..nj].copy_from_slice(prim.u.row(ii));
        v[..nj].copy_from_slice(prim.v.row(ii));
        p[..nj].copy_from_slice(prim.p.row(ii));
        t[..nj].copy_from_slice(prim.t.row(ii));
    }

    /// Export one swept station back to the AoS planes (ghost rows included)
    /// — the stations the post-halo edge-column flux pass will read.
    fn export_station(&self, prim: &mut PrimField, ii: usize) {
        let nj = self.nj;
        prim.rho.row_mut(ii).copy_from_slice(&self.row(ii, P_RHO)[..nj]);
        prim.u.row_mut(ii).copy_from_slice(&self.row(ii, P_U)[..nj]);
        prim.v.row_mut(ii).copy_from_slice(&self.row(ii, P_V)[..nj]);
        prim.p.row_mut(ii).copy_from_slice(&self.row(ii, P_P)[..nj]);
        prim.t.row_mut(ii).copy_from_slice(&self.row(ii, P_T)[..nj]);
    }
}

/// Reusable V7 sweep workspace: the conservative SoA arena, the primitive
/// SoA arena and the padded radius tables. Created lazily by the first V7
/// sweep and kept in the solver [`Workspace`](crate::field::Workspace).
#[derive(Clone, Debug)]
pub struct SoaWs {
    /// Recovered primitives (station-blocked). The conservative inputs are
    /// read straight out of the AoS field's contiguous component rows —
    /// lane loads need no padding, so a staged copy would only add a full
    /// extra round-trip of the field through memory per sweep.
    pub prims: SoaPrims,
    r_of: Vec<f64>,
    inv_r: Vec<f64>,
    shape: (usize, usize),
}

impl SoaWs {
    /// Build a workspace shaped for `patch`.
    pub fn new(patch: &Patch) -> Self {
        let prims = SoaPrims::zeros(patch);
        let (nr, stride) = (patch.nr(), prims.stride);
        // Identical expressions to the V5/V6 radius tables; padded entries
        // are never read (every lane block stays inside [0, nr)).
        let mut r_of = vec![1.0; stride];
        let mut inv_r = vec![1.0; stride];
        for (j, (r, w)) in r_of.iter_mut().zip(inv_r.iter_mut()).enumerate().take(nr) {
            *r = patch.r(j);
            *w = 1.0 / *r;
        }
        let shape = (patch.nxl + 2 * NG, patch.nr() + 2 * NG);
        Self { prims, shape, r_of, inv_r }
    }

    /// Rebuild if the patch shape changed (cheap no-op otherwise).
    pub fn ensure(&mut self, patch: &Patch) {
        if self.shape != (patch.nxl + 2 * NG, patch.nr() + 2 * NG) {
            *self = Self::new(patch);
        }
    }
}

// ---------------------------------------------------------------------------
// lane kernels (bit-identical per point to the V6 bodies)
// ---------------------------------------------------------------------------

/// One lane block of primitive recovery at interior radial index `j`
/// (per-point expression tree identical to `prims_row_fused`).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn prims_lane<const N: usize>(
    q: [&[f64]; 4],
    out: &mut [&mut [f64]; 5],
    inv_r: &[f64],
    j: usize,
    gm1: f64,
    inv_rgas: f64,
) {
    let at = j + NG;
    let q0 = LaneVec::<N>::load(q[0], at);
    let q1 = LaneVec::<N>::load(q[1], at);
    let q2 = LaneVec::<N>::load(q[2], at);
    let q3 = LaneVec::<N>::load(q[3], at);
    let w = LaneVec::<N>::load(inv_r, j);
    let rho = q0 * w;
    let inv_rho = rho.recip();
    let u = (q1 * w) * inv_rho;
    let v = (q2 * w) * inv_rho;
    let e = q3 * w;
    let ke = (LaneVec::splat(0.5) * rho) * (u * u + v * v);
    let p = LaneVec::splat(gm1) * (e - ke);
    let t = (p * inv_rho) * LaneVec::splat(inv_rgas);
    rho.store(out[P_RHO], at);
    u.store(out[P_U], at);
    v.store(out[P_V], at);
    p.store(out[P_P], at);
    t.store(out[P_T], at);
}

/// Recover primitives of one station over interior radial points
/// `[jlo, jhi)`: full lane blocks, then a shifted final block (or
/// single-lane blocks when the range is narrower than a lane).
#[allow(clippy::too_many_arguments)]
fn prims_station_tile(
    qrows: [&[f64]; 4],
    prims: &mut SoaPrims,
    ii: usize,
    jlo: usize,
    jhi: usize,
    gm1: f64,
    inv_rgas: f64,
    inv_r: &[f64],
) {
    let mut out = prims.station_rows_mut(ii);
    let mut j = jlo;
    while j + LANES <= jhi {
        prims_lane::<LANES>(qrows, &mut out, inv_r, j, gm1, inv_rgas);
        j += LANES;
    }
    if j < jhi {
        if jhi - jlo >= LANES {
            prims_lane::<LANES>(qrows, &mut out, inv_r, jhi - LANES, gm1, inv_rgas);
        } else {
            while j < jhi {
                prims_lane::<1>(qrows, &mut out, inv_r, j, gm1, inv_rgas);
                j += 1;
            }
        }
    }
}

/// Axis-symmetry ghost fill of one SoA station (bitwise the arithmetic of
/// [`crate::bc::mirror_prims_axis_row`]).
fn mirror_axis_station(prims: &mut SoaPrims, ii: usize) {
    let [rho, u, v, p, t] = prims.station_rows_mut(ii);
    for g in 0..NG {
        let (dst, src) = (NG - 1 - g, NG + g);
        rho[dst] = rho[src];
        u[dst] = u[src];
        v[dst] = -v[src];
        p[dst] = p[src];
        t[dst] = t[src];
    }
}

/// Far-field ghost fill of one SoA station (bitwise the arithmetic of
/// [`crate::bc::extrap_prims_top_row`]).
fn extrap_top_station(prims: &mut SoaPrims, ii: usize, nr: usize) {
    let rows = prims.station_rows_mut(ii);
    let a = NG + nr - 1;
    let b = NG + nr - 2;
    for row in rows {
        for g in 0..NG {
            let dst = NG + nr + g;
            let w = (g + 1) as f64;
            row[dst] = row[a] + w * (row[a] - row[b]);
        }
    }
}

/// Loop-invariant scalar constants of a flux station (hoisted subtrees of
/// the V6 per-point expressions — hoisting a subtree does not change the
/// per-point association).
#[derive(Clone, Copy)]
struct FluxConsts {
    inv_2dr: f64,
    inv_gm1: f64,
    two_mu: f64,
    c_lam: f64,
    mu: f64,
    neg_kappa: f64,
}

/// The primitive rows a flux station reads: the center station block plus
/// the `u`/`v`/`t` rows of the three x-stencil stations.
#[derive(Clone, Copy)]
struct StencilRows<'a> {
    rho0: &'a [f64],
    u0: &'a [f64],
    v0: &'a [f64],
    p0: &'a [f64],
    t0: &'a [f64],
    u_l: &'a [f64],
    u_m: &'a [f64],
    u_r: &'a [f64],
    v_l: &'a [f64],
    v_m: &'a [f64],
    v_r: &'a [f64],
    t_l: &'a [f64],
    t_m: &'a [f64],
    t_r: &'a [f64],
}

/// One lane block of the flux body at interior radial index `j` — the V6
/// `flux_row_chunked` per-point arithmetic with direction and viscosity as
/// const generics (no per-point branches).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn flux_lane<const DIRX: bool, const VISC: bool, const N: usize>(
    rows: &StencilRows<'_>,
    c: &FluxConsts,
    wl: f64,
    wm: f64,
    wr: f64,
    r_of: &[f64],
    inv_r: &[f64],
    f_rows: &mut [&mut [f64]; 4],
    src_row: &mut Option<&mut [f64]>,
    j: usize,
) {
    let at = j + NG;
    let rho = LaneVec::<N>::load(rows.rho0, at);
    let u = LaneVec::<N>::load(rows.u0, at);
    let v = LaneVec::<N>::load(rows.v0, at);
    let p = LaneVec::<N>::load(rows.p0, at);
    let r = LaneVec::<N>::load(r_of, j);
    let (txx, trr, ttt, txr, qx, qr);
    if VISC {
        let ux = LaneVec::splat(wl) * LaneVec::<N>::load(rows.u_l, at)
            + LaneVec::splat(wm) * LaneVec::<N>::load(rows.u_m, at)
            + LaneVec::splat(wr) * LaneVec::<N>::load(rows.u_r, at);
        let vx = LaneVec::splat(wl) * LaneVec::<N>::load(rows.v_l, at)
            + LaneVec::splat(wm) * LaneVec::<N>::load(rows.v_m, at)
            + LaneVec::splat(wr) * LaneVec::<N>::load(rows.v_r, at);
        let tx = LaneVec::splat(wl) * LaneVec::<N>::load(rows.t_l, at)
            + LaneVec::splat(wm) * LaneVec::<N>::load(rows.t_m, at)
            + LaneVec::splat(wr) * LaneVec::<N>::load(rows.t_r, at);
        let ur =
            (LaneVec::<N>::load(rows.u0, at + 1) - LaneVec::<N>::load(rows.u0, at - 1)) * LaneVec::splat(c.inv_2dr);
        let vr =
            (LaneVec::<N>::load(rows.v0, at + 1) - LaneVec::<N>::load(rows.v0, at - 1)) * LaneVec::splat(c.inv_2dr);
        let tr =
            (LaneVec::<N>::load(rows.t0, at + 1) - LaneVec::<N>::load(rows.t0, at - 1)) * LaneVec::splat(c.inv_2dr);
        let v_over_r = v * LaneVec::<N>::load(inv_r, j);
        let div = ux + vr + v_over_r;
        let lam_div = LaneVec::splat(c.c_lam) * div;
        txx = LaneVec::splat(c.two_mu) * ux + lam_div;
        trr = LaneVec::splat(c.two_mu) * vr + lam_div;
        ttt = LaneVec::splat(c.two_mu) * v_over_r + lam_div;
        txr = LaneVec::splat(c.mu) * (ur + vx);
        qx = LaneVec::splat(c.neg_kappa) * tx;
        qr = LaneVec::splat(c.neg_kappa) * tr;
    } else {
        // Inviscid: the V6 body still evaluates the flux expressions with
        // the default (zero) stresses, so V7 does the same for bit parity.
        txx = LaneVec::splat(0.0);
        trr = LaneVec::splat(0.0);
        ttt = LaneVec::splat(0.0);
        txr = LaneVec::splat(0.0);
        qx = LaneVec::splat(0.0);
        qr = LaneVec::splat(0.0);
    }
    let e = p * LaneVec::splat(c.inv_gm1) + (LaneVec::splat(0.5) * rho) * (u * u + v * v);
    let (f0, f1, f2, f3);
    if DIRX {
        let m = rho * u;
        f0 = m;
        f1 = m * u + p - txx;
        f2 = m * v - txr;
        f3 = (e + p) * u - u * txx - v * txr + qx;
    } else {
        let n = rho * v;
        f0 = n;
        f1 = n * u - txr;
        f2 = n * v + p - trr;
        f3 = (e + p) * v - u * txr - v * trr + qr;
    }
    (r * f0).store(f_rows[0], at);
    (r * f1).store(f_rows[1], at);
    (r * f2).store(f_rows[2], at);
    (r * f3).store(f_rows[3], at);
    if !DIRX {
        if let Some(sr) = src_row.as_deref_mut() {
            (p - ttt).store(sr, at);
        }
    }
}

/// Evaluate one station's flux (and source, for radial sweeps) over the
/// interior radial points `[jlo, jhi)` from the SoA primitive arena.
#[allow(clippy::too_many_arguments)]
fn flux_station_tile<const DIRX: bool, const VISC: bool>(
    prims: &SoaPrims,
    patch: &Patch,
    edges: EdgeFlags,
    c: &FluxConsts,
    inv_2dx: f64,
    flux: &mut FluxField,
    src: Option<&mut Array2>,
    e: usize,
    jlo: usize,
    jhi: usize,
    r_of: &[f64],
    inv_r: &[f64],
) {
    let nxl = patch.nxl;
    let ii = e + NG;
    // x-stencil stations and weights, exactly as in the V6 kernel.
    let (cl, cm, cr, wl, wm, wr);
    if e == 0 && edges.left {
        (cl, cm, cr) = (ii, ii + 1, ii + 2);
        (wl, wm, wr) = (-3.0 * inv_2dx, 4.0 * inv_2dx, -inv_2dx);
    } else if e == nxl - 1 && edges.right {
        (cl, cm, cr) = (ii - 2, ii - 1, ii);
        (wl, wm, wr) = (inv_2dx, -4.0 * inv_2dx, 3.0 * inv_2dx);
    } else {
        (cl, cm, cr) = (ii - 1, ii, ii + 1);
        (wl, wm, wr) = (-inv_2dx, 0.0, inv_2dx);
    }
    let rows = StencilRows {
        rho0: prims.row(ii, P_RHO),
        u0: prims.row(ii, P_U),
        v0: prims.row(ii, P_V),
        p0: prims.row(ii, P_P),
        t0: prims.row(ii, P_T),
        u_l: prims.row(cl, P_U),
        u_m: prims.row(cm, P_U),
        u_r: prims.row(cr, P_U),
        v_l: prims.row(cl, P_V),
        v_m: prims.row(cm, P_V),
        v_r: prims.row(cr, P_V),
        t_l: prims.row(cl, P_T),
        t_m: prims.row(cm, P_T),
        t_r: prims.row(cr, P_T),
    };
    let [fa, fb, fc, fd] = &mut flux.c;
    let mut f_rows: [&mut [f64]; 4] = [fa.row_mut(ii), fb.row_mut(ii), fc.row_mut(ii), fd.row_mut(ii)];
    let mut src_row = src.map(|s| s.row_mut(ii));

    let mut j = jlo;
    while j + LANES <= jhi {
        flux_lane::<DIRX, VISC, LANES>(&rows, c, wl, wm, wr, r_of, inv_r, &mut f_rows, &mut src_row, j);
        j += LANES;
    }
    if j < jhi {
        if jhi - jlo >= LANES {
            flux_lane::<DIRX, VISC, LANES>(&rows, c, wl, wm, wr, r_of, inv_r, &mut f_rows, &mut src_row, jhi - LANES);
        } else {
            while j < jhi {
                flux_lane::<DIRX, VISC, 1>(&rows, c, wl, wm, wr, r_of, inv_r, &mut f_rows, &mut src_row, j);
                j += 1;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// the V7 fused sweep
// ---------------------------------------------------------------------------

/// The V7 rung: the fused recover→ghost-fill→flux pipeline of
/// [`crate::kernels::fused_sweep`], run over the lane-aligned SoA arena with
/// cache-blocked radial tiles.
///
/// The call contract is identical to the V6 sweep (same `prim_range` /
/// `flux_range` / `hi_pre` semantics, same ledger accounting); additionally:
///
/// * the conservative rows of `prim_range` are staged AoS→SoA on entry,
/// * precomputed boundary stations (below `prim_range` and `hi_pre`) are
///   imported from the AoS `prim` planes,
/// * the swept stations named in `exports` are copied back to the AoS
///   `prim` planes on exit — the caller lists exactly the stations a later
///   AoS consumer (edge-column flux pass, characteristic outflow stencil)
///   will read; stations outside `prim_range` are ignored (they are still
///   AoS-resident),
///
/// so from the outside the sweep is a drop-in replacement: bitwise-equal
/// primitives where exported, bitwise-equal fluxes everywhere. Tile
/// boundary columns are recomputed rather than carried between tiles, which
/// is why any `tile_r >= 1` yields bit-identical results.
#[allow(clippy::too_many_arguments)]
pub fn fused_sweep(
    dir: FluxDir,
    field: &Field,
    prim: &mut PrimField,
    edges: EdgeFlags,
    gas: &GasModel,
    flux: &mut FluxField,
    src: Option<&mut Array2>,
    prim_range: std::ops::Range<usize>,
    flux_range: std::ops::Range<usize>,
    hi_pre: Option<usize>,
    exports: &[usize],
    ws: &mut SoaWs,
    tile_r: usize,
    ledger: &mut FlopLedger,
) {
    let viscous = !gas.is_inviscid();
    match (dir, viscous) {
        (FluxDir::X, true) => run::<true, true>(
            field, prim, edges, gas, flux, src, prim_range, flux_range, hi_pre, exports, ws, tile_r, ledger,
        ),
        (FluxDir::X, false) => run::<true, false>(
            field, prim, edges, gas, flux, src, prim_range, flux_range, hi_pre, exports, ws, tile_r, ledger,
        ),
        (FluxDir::R, true) => run::<false, true>(
            field, prim, edges, gas, flux, src, prim_range, flux_range, hi_pre, exports, ws, tile_r, ledger,
        ),
        (FluxDir::R, false) => run::<false, false>(
            field, prim, edges, gas, flux, src, prim_range, flux_range, hi_pre, exports, ws, tile_r, ledger,
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn run<const DIRX: bool, const VISC: bool>(
    field: &Field,
    prim: &mut PrimField,
    edges: EdgeFlags,
    gas: &GasModel,
    flux: &mut FluxField,
    mut src: Option<&mut Array2>,
    prim_range: std::ops::Range<usize>,
    flux_range: std::ops::Range<usize>,
    hi_pre: Option<usize>,
    exports: &[usize],
    ws: &mut SoaWs,
    tile_r: usize,
    ledger: &mut FlopLedger,
) {
    let patch = &field.patch;
    let (nxl, nr) = (patch.nxl, patch.nr());
    debug_assert!(prim_range.end <= nxl && flux_range.end <= nxl);
    ws.ensure(patch);
    let tile_r = tile_r.max(1);

    let gm1 = gas.gamma - 1.0;
    let inv_rgas = 1.0 / gas.r_gas;
    let inv_2dx = 1.0 / (2.0 * patch.grid.dx);
    let consts = FluxConsts {
        inv_2dr: 1.0 / (2.0 * patch.grid.dr),
        inv_gm1: 1.0 / (gas.gamma - 1.0),
        two_mu: 2.0 * gas.mu,
        c_lam: -(2.0 / 3.0) * gas.mu,
        mu: gas.mu,
        neg_kappa: -gas.kappa,
    };

    // AoS→SoA boundary: import the precomputed boundary primitive stations.
    // The conservative rows are NOT staged — lane loads read the AoS field's
    // contiguous component rows in place (loads need no padding; only the
    // primitive stores use the padded arena), so the sweep adds no extra
    // round-trip of the field through memory.
    for s in 0..prim_range.start {
        ws.prims.import_station(prim, s + NG);
    }
    if let Some(h) = hi_pre {
        if !prim_range.contains(&h) {
            ws.prims.import_station(prim, h + NG);
        }
    }

    let n_tiles = nr.div_ceil(tile_r);
    for t in 0..n_tiles {
        let jlo = t * tile_r;
        let jhi = (jlo + tile_r).min(nr);
        // Prims extend one point past the flux tile so the radial stencil at
        // the tile's top edge is satisfied; the overlap column is recomputed
        // bit-identically by the next tile.
        let pjhi = (jhi + 1).min(nr);
        let (first, last) = (jlo == 0, jhi == nr);

        let mut next_flux = flux_range.start;
        for i in prim_range.clone() {
            let qrows =
                [field.q[0].row(i + NG), field.q[1].row(i + NG), field.q[2].row(i + NG), field.q[3].row(i + NG)];
            prims_station_tile(qrows, &mut ws.prims, i + NG, jlo, pjhi, gm1, inv_rgas, &ws.inv_r);
            if first {
                mirror_axis_station(&mut ws.prims, i + NG);
            }
            if last {
                extrap_top_station(&mut ws.prims, i + NG, nr);
            }
            while next_flux < flux_range.end {
                let need = flux_needs(next_flux, nxl, edges, VISC);
                if need > i && hi_pre != Some(need) {
                    break;
                }
                flux_station_tile::<DIRX, VISC>(
                    &ws.prims,
                    patch,
                    edges,
                    &consts,
                    inv_2dx,
                    flux,
                    src.as_deref_mut(),
                    next_flux,
                    jlo,
                    jhi,
                    &ws.r_of,
                    &ws.inv_r,
                );
                next_flux += 1;
            }
        }
        while next_flux < flux_range.end {
            flux_station_tile::<DIRX, VISC>(
                &ws.prims,
                patch,
                edges,
                &consts,
                inv_2dx,
                flux,
                src.as_deref_mut(),
                next_flux,
                jlo,
                jhi,
                &ws.r_of,
                &ws.inv_r,
            );
            next_flux += 1;
        }
    }

    // SoA→AoS boundary: export the swept stations whose primitives a later
    // AoS consumer will read (edge-column flux pass after `finish_prims`,
    // the characteristic-outflow stencil). Stations outside `prim_range`
    // were never moved out of the AoS planes.
    for &s in exports {
        if prim_range.contains(&s) {
            ws.prims.export_station(prim, s + NG);
        }
    }

    // Ledger accounting identical to the V5/V6 paths (tile-overlap columns
    // are recomputation, not model work).
    ledger.prims += (prim_range.len() * nr) as u64 * opcount::COST_PRIMS;
    ledger.flux +=
        (flux_range.len() * nr) as u64 * if VISC { opcount::COST_FLUX_VISCOUS } else { opcount::COST_FLUX_INVISCID };
    if !DIRX {
        ledger.source += (flux_range.len() * nr) as u64 * opcount::COST_SOURCE;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Regime, SolverConfig, Version, DEFAULT_TILE_R};
    use crate::driver::Solver;
    use crate::kernels;
    use ns_numerics::gas::Primitive;
    use ns_numerics::Grid;

    fn setup(regime: Regime) -> (Field, GasModel, Patch) {
        let cfg = SolverConfig::paper(Grid::small(), regime);
        let gas = cfg.effective_gas();
        let patch = Patch::whole(cfg.grid.clone());
        let field = Field::from_primitives(patch.clone(), &gas, |x, r| Primitive {
            rho: 1.0 + 0.1 * (0.3 * x).sin() * (0.9 * r).cos(),
            u: 0.8 + 0.05 * (0.2 * x + r).cos(),
            v: 0.02 * (0.5 * x).sin() * r.min(1.5),
            p: 0.714 + 0.03 * (0.4 * x - 0.7 * r).sin(),
        });
        (field, gas, patch)
    }

    #[test]
    fn lanevec_ops_are_elementwise_ieee() {
        let a = LaneVec::<4>([1.0, -2.5, 0.0, f64::INFINITY]);
        let b = LaneVec::<4>([2.0, 0.5, -0.0, 1.0]);
        assert_eq!((a + b).0, [3.0, -2.0, 0.0, f64::INFINITY]);
        assert_eq!((a - b).0, [-1.0, -3.0, 0.0, f64::INFINITY]);
        assert_eq!((a * b).0, [2.0, -1.25, -0.0, f64::INFINITY]);
        assert_eq!((a / b).0[0], 0.5);
        assert_eq!((-b).0, [-2.0, -0.5, 0.0, -1.0]);
        assert_eq!(b.recip().0[1], 2.0);
        let mut out = [0.0; 6];
        LaneVec::<4>::load(&[9.0, 1.0, 2.0, 3.0, 4.0, 9.0], 1).store(&mut out, 1);
        assert_eq!(out, [0.0, 1.0, 2.0, 3.0, 4.0, 0.0]);
        assert_eq!(LaneVec::<3>::splat(7.0).0, [7.0; 3]);
    }

    #[test]
    fn aos_soa_roundtrip_is_bitwise_including_ghosts_and_nan_payloads() {
        let (mut field, _, patch) = setup(Regime::NavierStokes);
        // Poison assorted cells -- ghosts included -- with signed zeros,
        // subnormals and NaNs carrying distinctive payload bits.
        let (ni, nj) = (patch.nxl + 2 * NG, patch.nr() + 2 * NG);
        let specials = [f64::from_bits(0x7ff8_dead_beef_cafe), -0.0, f64::MIN_POSITIVE / 8.0, f64::NEG_INFINITY];
        for (k, &s) in specials.iter().enumerate() {
            field.q[k].set(k, k, s);
            field.q[k].set(ni - 1 - k, nj - 1 - k, s);
        }
        let soa = SoaField::from_field(&field);
        let mut back = Field::zeros(patch.clone());
        soa.to_field(&mut back);
        for c in 0..4 {
            for ii in 0..ni {
                for jj in 0..nj {
                    assert_eq!(
                        field.q[c].at(ii, jj).to_bits(),
                        back.q[c].at(ii, jj).to_bits(),
                        "component {c} at raw ({ii},{jj})"
                    );
                }
            }
        }
    }

    /// The SoA tiled sweep must be bitwise the V6 fused sweep for every
    /// direction, regime, sweep shape and tile size (tile boundaries are
    /// recomputation, not approximation).
    #[test]
    fn soa_sweep_is_bitwise_v6_for_any_tile_size() {
        for regime in [Regime::NavierStokes, Regime::Euler] {
            let (field, gas, patch) = setup(regime);
            let edges = EdgeFlags::of(&patch);
            let (nxl, nr) = (patch.nxl, patch.nr());
            for dir in [FluxDir::X, FluxDir::R] {
                let mut ref_ledger = FlopLedger::default();
                let mut ref_prim = PrimField::zeros(&patch);
                let mut ref_flux = FluxField::zeros(&patch);
                let mut ref_src = Array2::zeros(nxl + 2 * NG, nr + 2 * NG);
                kernels::fused_sweep(
                    dir,
                    &field,
                    &mut ref_prim,
                    edges,
                    &gas,
                    &mut ref_flux,
                    Some(&mut ref_src),
                    0..nxl,
                    0..nxl,
                    None,
                    &mut ref_ledger,
                );
                for tile_r in [1, 3, LANES, DEFAULT_TILE_R, 10_000] {
                    let mut ledger = FlopLedger::default();
                    let mut prim = PrimField::zeros(&patch);
                    let mut flux = FluxField::zeros(&patch);
                    let mut src = Array2::zeros(nxl + 2 * NG, nr + 2 * NG);
                    let mut ws = SoaWs::new(&patch);
                    fused_sweep(
                        dir,
                        &field,
                        &mut prim,
                        edges,
                        &gas,
                        &mut flux,
                        Some(&mut src),
                        0..nxl,
                        0..nxl,
                        None,
                        &[],
                        &mut ws,
                        tile_r,
                        &mut ledger,
                    );
                    for c in 0..4 {
                        for i in 0..nxl {
                            for j in 0..nr {
                                assert_eq!(
                                    flux.at(c, i as isize, j as isize).to_bits(),
                                    ref_flux.at(c, i as isize, j as isize).to_bits(),
                                    "{regime:?} {dir:?} tile {tile_r} comp {c} at ({i},{j})"
                                );
                            }
                        }
                    }
                    if dir == FluxDir::R {
                        for i in 0..nxl {
                            for j in 0..nr {
                                assert_eq!(
                                    src.at(i + NG, j + NG).to_bits(),
                                    ref_src.at(i + NG, j + NG).to_bits(),
                                    "{regime:?} tile {tile_r} source at ({i},{j})"
                                );
                            }
                        }
                    }
                    assert_eq!(ledger, ref_ledger, "{regime:?} {dir:?} tile {tile_r} ledger");
                }
            }
        }
    }

    /// The x-operator's split shape on an internal patch: precomputed
    /// boundary stations are imported, and the stations the post-halo
    /// edge-column pass will stencil are exported back bitwise.
    #[test]
    fn split_shape_imports_and_exports_boundary_stations_bitwise() {
        let grid = Grid::small();
        let regime = Regime::NavierStokes;
        let cfg = SolverConfig::paper(grid.clone(), regime);
        let gas = cfg.effective_gas();
        let patch = Patch::block(grid, 1, 3); // internal: no global edges
        let field = Field::from_primitives(patch.clone(), &gas, |x, r| Primitive {
            rho: 1.0 + 0.07 * (0.31 * x).cos() * (0.8 * r).sin(),
            u: 0.9 + 0.04 * (0.22 * x - r).sin(),
            v: 0.015 * (0.45 * x).cos() * r.min(1.4),
            p: 0.7 + 0.02 * (0.38 * x + 0.6 * r).cos(),
        });
        let edges = EdgeFlags::of(&patch);
        assert!(!edges.left && !edges.right);
        let (nxl, nr) = (patch.nxl, patch.nr());
        let (flo, fhi) = (1, nxl - 1);

        let run = |tile: Option<usize>| {
            let mut ledger = FlopLedger::default();
            let mut prim = PrimField::zeros(&patch);
            let mut flux = FluxField::zeros(&patch);
            kernels::fused_boundary_prims(&field, &mut prim, &gas, &[0, nxl - 1], &mut ledger);
            match tile {
                None => kernels::fused_sweep(
                    FluxDir::X,
                    &field,
                    &mut prim,
                    edges,
                    &gas,
                    &mut flux,
                    None,
                    1..nxl - 1,
                    flo..fhi,
                    Some(nxl - 1),
                    &mut ledger,
                ),
                Some(t) => {
                    let mut ws = SoaWs::new(&patch);
                    fused_sweep(
                        FluxDir::X,
                        &field,
                        &mut prim,
                        edges,
                        &gas,
                        &mut flux,
                        None,
                        1..nxl - 1,
                        flo..fhi,
                        Some(nxl - 1),
                        &[flo, fhi - 1],
                        &mut ws,
                        t,
                        &mut ledger,
                    )
                }
            }
            (prim, flux, ledger)
        };

        let (p6, f6, l6) = run(None);
        for tile in [1, 7, DEFAULT_TILE_R] {
            let (p7, f7, l7) = run(Some(tile));
            assert_eq!(l6, l7, "tile {tile} ledger");
            for c in 0..4 {
                for i in flo..fhi {
                    for j in 0..nr {
                        assert_eq!(
                            f6.at(c, i as isize, j as isize).to_bits(),
                            f7.at(c, i as isize, j as isize).to_bits(),
                            "tile {tile} comp {c} at ({i},{j})"
                        );
                    }
                }
            }
            // The stations the AoS edge-column pass stencils (flo and fhi-1)
            // must have been exported bitwise, radial ghosts included.
            for s in [flo, fhi - 1] {
                let ii = s + NG;
                for jj in 0..nr + 2 * NG {
                    for (a, b) in [(&p6.rho, &p7.rho), (&p6.u, &p7.u), (&p6.v, &p7.v), (&p6.p, &p7.p), (&p6.t, &p7.t)] {
                        assert_eq!(a.at(ii, jj).to_bits(), b.at(ii, jj).to_bits(), "tile {tile} station {s} jj {jj}");
                    }
                }
            }
        }
    }

    /// End-to-end: a serial V7 solver is bitwise a serial V6 solver, for both
    /// regimes and a non-default tile size.
    #[test]
    fn v7_solver_is_bitwise_v6() {
        for regime in [Regime::NavierStokes, Regime::Euler] {
            for tile_r in [5, DEFAULT_TILE_R] {
                let mut c6 = SolverConfig::paper(Grid::small(), regime);
                c6.version = Version::V6;
                let mut c7 = c6.clone();
                c7.version = Version::V7;
                c7.tile_r = tile_r;
                let mut s6 = Solver::new(c6);
                let mut s7 = Solver::new(c7);
                s6.run(4);
                s7.run(4);
                for c in 0..4 {
                    for i in 0..s6.field.nxl() {
                        for j in 0..s6.field.nr() {
                            assert_eq!(
                                s6.field.q[c].at(i + NG, j + NG).to_bits(),
                                s7.field.q[c].at(i + NG, j + NG).to_bits(),
                                "{regime:?} tile {tile_r} comp {c} at ({i},{j})"
                            );
                        }
                    }
                }
                assert_eq!(s6.ledger, s7.ledger, "{regime:?} tile {tile_r} FLOP ledger");
            }
        }
    }
}
