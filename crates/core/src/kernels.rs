//! Versioned hot kernels: primitive recovery and flux evaluation.
//!
//! Each kernel exists in the paper's five single-processor optimization
//! flavors (see [`Version`]). The flavors are *semantically equivalent* —
//! they differ in loop order, exponentiation style, division style and
//! addressing style, exactly the transformations the paper applied to its
//! Fortran code:
//!
//! | Version | loops            | squares  | divides        | addressing |
//! |---------|------------------|----------|----------------|------------|
//! | V1      | axial innermost  | `powf`   | `/`            | indexed    |
//! | V2      | axial innermost  | `x * x`  | `/`            | indexed    |
//! | V3      | radial innermost | `x * x`  | `/`            | indexed    |
//! | V4      | radial innermost | `x * x`  | reciprocal mul | indexed    |
//! | V5      | radial innermost | `x * x`  | reciprocal mul | row slices |
//!
//! Radial-innermost loops are stride-1 over the row-major planes (the loop
//! interchange the paper credits with ~50% of the gain); V5's row-slice
//! addressing is the analogue of the paper's COMMON-block collapse (fewer
//! address computations, friendlier to the register allocator and the
//! vectorizer).

use crate::config::Version;
use crate::field::{Field, FluxField, Patch, PrimField, NG};
use crate::opcount::{self, FlopLedger};
use crate::physics::{self, Derivs};
use ns_numerics::{Array2, GasModel};

/// Square helper: `powf` for V1, multiplication for the rest.
#[inline(always)]
fn sq<const POWF: bool>(x: f64) -> f64 {
    if POWF {
        x.powf(2.0)
    } else {
        x * x
    }
}

/// Which global boundaries this patch owns (affects derivative stencils).
#[derive(Clone, Copy, Debug)]
pub struct EdgeFlags {
    /// Patch owns the global inflow boundary.
    pub left: bool,
    /// Patch owns the global outflow boundary.
    pub right: bool,
}

impl EdgeFlags {
    /// Edge flags of a patch.
    pub fn of(patch: &Patch) -> Self {
        Self { left: patch.is_global_left(), right: patch.is_global_right() }
    }
}

// ---------------------------------------------------------------------------
// primitive recovery
// ---------------------------------------------------------------------------

/// Recover primitives `rho, u, v, p, T` from the r-weighted conservative
/// field on the interior `[0, nxl) x [0, nr)`.
pub fn compute_prims(version: Version, field: &Field, prim: &mut PrimField, gas: &GasModel, ledger: &mut FlopLedger) {
    match version {
        Version::V1 => prims_indexed::<true, false, true>(field, prim, gas),
        Version::V2 => prims_indexed::<false, false, true>(field, prim, gas),
        Version::V3 => prims_indexed::<false, false, false>(field, prim, gas),
        Version::V4 => prims_indexed::<false, true, false>(field, prim, gas),
        Version::V5 => prims_sliced(field, prim, gas),
    }
    ledger.prims += (field.nxl() * field.nr()) as u64 * opcount::COST_PRIMS;
}

/// Indexed primitive recovery; `POWF` selects `powf` squares, `RECIP`
/// selects reciprocal multiplication, `IINNER` selects axial-innermost
/// (strided) loops.
fn prims_indexed<const POWF: bool, const RECIP: bool, const IINNER: bool>(
    field: &Field,
    prim: &mut PrimField,
    gas: &GasModel,
) {
    let (nxl, nr) = (field.nxl(), field.nr());
    let gm1 = gas.gamma - 1.0;
    let inv_rgas = 1.0 / gas.r_gas;
    // Reciprocal radius table (one division per row, amortized; V1-V3 divide
    // per point instead).
    let inv_r: Vec<f64> = (0..nr).map(|j| 1.0 / field.patch.r(j)).collect();

    let mut body = |i: usize, j: usize| {
        let (ii, jj) = (i + NG, j + NG);
        let (q0, q1, q2, q3) =
            (field.q[0].at(ii, jj), field.q[1].at(ii, jj), field.q[2].at(ii, jj), field.q[3].at(ii, jj));
        let (rho, mx, mr, e) = if RECIP {
            let w = inv_r[j];
            (q0 * w, q1 * w, q2 * w, q3 * w)
        } else {
            let r = field.patch.r(j);
            (q0 / r, q1 / r, q2 / r, q3 / r)
        };
        let (u, v) = if RECIP {
            let inv_rho = 1.0 / rho;
            (mx * inv_rho, mr * inv_rho)
        } else {
            (mx / rho, mr / rho)
        };
        let ke = 0.5 * rho * (sq::<POWF>(u) + sq::<POWF>(v));
        let p = gm1 * (e - ke);
        let t = if RECIP { p * (1.0 / rho) * inv_rgas } else { p / (rho * gas.r_gas) };
        prim.rho.set(ii, jj, rho);
        prim.u.set(ii, jj, u);
        prim.v.set(ii, jj, v);
        prim.p.set(ii, jj, p);
        prim.t.set(ii, jj, t);
    };

    if IINNER {
        for j in 0..nr {
            for i in 0..nxl {
                body(i, j);
            }
        }
    } else {
        for i in 0..nxl {
            for j in 0..nr {
                body(i, j);
            }
        }
    }
}

/// V5 primitive recovery: row-slice addressing, stride-1, reciprocals.
fn prims_sliced(field: &Field, prim: &mut PrimField, gas: &GasModel) {
    let (nxl, nr) = (field.nxl(), field.nr());
    let gm1 = gas.gamma - 1.0;
    let inv_rgas = 1.0 / gas.r_gas;
    let inv_r: Vec<f64> = (0..nr).map(|j| 1.0 / field.patch.r(j)).collect();

    for i in 0..nxl {
        let ii = i + NG;
        let q0 = &field.q[0].row(ii)[NG..NG + nr];
        let q1 = &field.q[1].row(ii)[NG..NG + nr];
        let q2 = &field.q[2].row(ii)[NG..NG + nr];
        let q3 = &field.q[3].row(ii)[NG..NG + nr];
        // Split the destination rows so the borrows don't overlap.
        let rho_row = &mut prim.rho.row_mut(ii)[NG..NG + nr];
        for j in 0..nr {
            rho_row[j] = q0[j] * inv_r[j];
        }
        let u_row = &mut prim.u.row_mut(ii)[NG..NG + nr];
        for j in 0..nr {
            u_row[j] = q1[j] * inv_r[j];
        }
        let v_row = &mut prim.v.row_mut(ii)[NG..NG + nr];
        for j in 0..nr {
            v_row[j] = q2[j] * inv_r[j];
        }
        // Second pass: divide by rho, recover p and T.
        for j in 0..nr {
            let rho = field.q[0].at(ii, j + NG) * inv_r[j];
            let inv_rho = 1.0 / rho;
            let u = prim.u.at(ii, j + NG) * inv_rho;
            let v = prim.v.at(ii, j + NG) * inv_rho;
            let e = q3[j] * inv_r[j];
            let ke = 0.5 * rho * (u * u + v * v);
            let p = gm1 * (e - ke);
            prim.u.set(ii, j + NG, u);
            prim.v.set(ii, j + NG, v);
            prim.p.set(ii, j + NG, p);
            prim.t.set(ii, j + NG, p * inv_rho * inv_rgas);
        }
    }
}

// ---------------------------------------------------------------------------
// flux kernels
// ---------------------------------------------------------------------------

/// Derivative stencil at interior point `(i, j)` (raw indices `ii, jj`);
/// (takes the full stencil context — splitting it would add per-point cost)
/// x-derivatives fall back to second-order one-sided stencils at owned
/// global boundaries, r-derivatives are always central (ghost rows are
/// filled by the boundary module before any flux kernel runs).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn derivs_at(
    prim: &PrimField,
    i: usize,
    nxl: usize,
    edges: EdgeFlags,
    ii: usize,
    jj: usize,
    inv_2dx: f64,
    inv_2dr: f64,
) -> Derivs {
    let dx_of = |a: &Array2| -> f64 {
        if i == 0 && edges.left {
            (-3.0 * a.at(ii, jj) + 4.0 * a.at(ii + 1, jj) - a.at(ii + 2, jj)) * inv_2dx
        } else if i == nxl - 1 && edges.right {
            (3.0 * a.at(ii, jj) - 4.0 * a.at(ii - 1, jj) + a.at(ii - 2, jj)) * inv_2dx
        } else {
            (a.at(ii + 1, jj) - a.at(ii - 1, jj)) * inv_2dx
        }
    };
    let dr_of = |a: &Array2| -> f64 { (a.at(ii, jj + 1) - a.at(ii, jj - 1)) * inv_2dr };
    Derivs {
        ux: dx_of(&prim.u),
        ur: dr_of(&prim.u),
        vx: dx_of(&prim.v),
        vr: dr_of(&prim.v),
        tx: dx_of(&prim.t),
        tr: dr_of(&prim.t),
    }
}

/// Direction of a flux kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FluxDir {
    /// Axial flux `F` (feeds x-sweeps).
    X,
    /// Radial flux `G` plus the source plane (feeds r-sweeps).
    R,
}

/// Compute the r-weighted flux (`F` or `G`) on the interior, and for
/// [`FluxDir::R`] also the source plane `p - t_theta_theta`.
#[allow(clippy::too_many_arguments)]
pub fn compute_flux(
    version: Version,
    dir: FluxDir,
    prim: &PrimField,
    patch: &Patch,
    edges: EdgeFlags,
    gas: &GasModel,
    flux: &mut FluxField,
    src: Option<&mut Array2>,
    ledger: &mut FlopLedger,
) {
    compute_flux_range(version, dir, prim, patch, edges, gas, flux, src, 0..patch.nxl, ledger);
}

/// [`compute_flux`] restricted to the axial columns in `i_range` — the
/// building block of the Version 6 overlap, which computes the interior
/// while the boundary primitive columns are in flight and finishes the
/// edge columns afterwards.
#[allow(clippy::too_many_arguments)]
pub fn compute_flux_range(
    version: Version,
    dir: FluxDir,
    prim: &PrimField,
    patch: &Patch,
    edges: EdgeFlags,
    gas: &GasModel,
    flux: &mut FluxField,
    src: Option<&mut Array2>,
    i_range: std::ops::Range<usize>,
    ledger: &mut FlopLedger,
) {
    debug_assert!(i_range.end <= patch.nxl);
    if i_range.is_empty() {
        return;
    }
    let viscous = !gas.is_inviscid();
    let pts = (i_range.len() * patch.nr()) as u64;
    match version {
        Version::V1 => flux_indexed::<true, false, true>(dir, prim, patch, edges, gas, flux, src, i_range),
        Version::V2 => flux_indexed::<false, false, true>(dir, prim, patch, edges, gas, flux, src, i_range),
        Version::V3 => flux_indexed::<false, false, false>(dir, prim, patch, edges, gas, flux, src, i_range),
        Version::V4 => flux_indexed::<false, true, false>(dir, prim, patch, edges, gas, flux, src, i_range),
        Version::V5 => flux_sliced(dir, prim, patch, edges, gas, flux, src, i_range),
    }
    ledger.flux += pts * if viscous { opcount::COST_FLUX_VISCOUS } else { opcount::COST_FLUX_INVISCID };
    if dir == FluxDir::R {
        ledger.source += pts * opcount::COST_SOURCE;
    }
}

/// Indexed flux kernel shared by V1-V4 (see [`compute_flux`]).
#[allow(clippy::too_many_arguments)]
fn flux_indexed<const POWF: bool, const RECIP: bool, const IINNER: bool>(
    dir: FluxDir,
    prim: &PrimField,
    patch: &Patch,
    edges: EdgeFlags,
    gas: &GasModel,
    flux: &mut FluxField,
    mut src: Option<&mut Array2>,
    i_range: std::ops::Range<usize>,
) {
    let (nxl, nr) = (patch.nxl, patch.nr());
    let inv_2dx = 1.0 / (2.0 * patch.grid.dx);
    let inv_2dr = 1.0 / (2.0 * patch.grid.dr);
    let inv_gm1 = 1.0 / (gas.gamma - 1.0);
    let viscous = !gas.is_inviscid();
    let inv_r: Vec<f64> = (0..nr).map(|j| 1.0 / patch.r(j)).collect();

    let mut body = |i: usize, j: usize, src: &mut Option<&mut Array2>| {
        let (ii, jj) = (i + NG, j + NG);
        let rho = prim.rho.at(ii, jj);
        let u = prim.u.at(ii, jj);
        let v = prim.v.at(ii, jj);
        let p = prim.p.at(ii, jj);
        let r = patch.r(j);
        let s = if viscous {
            let d = derivs_at(prim, i, nxl, edges, ii, jj, inv_2dx, inv_2dr);
            let v_over_r = if RECIP { v * inv_r[j] } else { v / r };
            physics::stresses(gas, &d, v_over_r)
        } else {
            Default::default()
        };
        let e = if POWF {
            p * inv_gm1 + 0.5 * rho * (u.powf(2.0) + v.powf(2.0))
        } else {
            p * inv_gm1 + 0.5 * rho * (u * u + v * v)
        };
        let f = match dir {
            FluxDir::X => physics::xflux(rho, u, v, p, e, &s),
            FluxDir::R => physics::rflux(rho, u, v, p, e, &s),
        };
        for c in 0..4 {
            flux.c[c].set(ii, jj, r * f[c]);
        }
        if dir == FluxDir::R {
            if let Some(sp) = src.as_deref_mut() {
                sp.set(ii, jj, physics::source3(p, &s));
            }
        }
    };

    if IINNER {
        for j in 0..nr {
            for i in i_range.clone() {
                body(i, j, &mut src);
            }
        }
    } else {
        for i in i_range {
            for j in 0..nr {
                body(i, j, &mut src);
            }
        }
    }
}

/// V5 flux kernel: row-slice addressing over stride-1 inner loops.
#[allow(clippy::too_many_arguments)]
fn flux_sliced(
    dir: FluxDir,
    prim: &PrimField,
    patch: &Patch,
    edges: EdgeFlags,
    gas: &GasModel,
    flux: &mut FluxField,
    mut src: Option<&mut Array2>,
    i_range: std::ops::Range<usize>,
) {
    let (nxl, nr) = (patch.nxl, patch.nr());
    let inv_2dx = 1.0 / (2.0 * patch.grid.dx);
    let inv_2dr = 1.0 / (2.0 * patch.grid.dr);
    let inv_gm1 = 1.0 / (gas.gamma - 1.0);
    let viscous = !gas.is_inviscid();
    let mu = gas.mu;
    let kappa = gas.kappa;
    let r_of: Vec<f64> = (0..nr).map(|j| patch.r(j)).collect();
    let inv_r: Vec<f64> = r_of.iter().map(|&r| 1.0 / r).collect();

    for i in i_range {
        let ii = i + NG;
        // Row slices of the stencil neighborhood, bound once per row: the
        // "collapse the COMMON blocks" analogue (single base pointer + offset
        // addressing in the inner loop).
        let u0 = prim.u.row(ii);
        let v0 = prim.v.row(ii);
        let t0 = prim.t.row(ii);
        let rho0 = prim.rho.row(ii);
        let p0 = prim.p.row(ii);
        // x-stencil rows with one-sided fallback at owned global edges.
        let (cl, cm, cr, wl, wm, wr);
        if i == 0 && edges.left {
            // -3 f0 + 4 f1 - f2 at (ii, ii+1, ii+2)
            (cl, cm, cr) = (ii, ii + 1, ii + 2);
            (wl, wm, wr) = (-3.0 * inv_2dx, 4.0 * inv_2dx, -inv_2dx);
        } else if i == nxl - 1 && edges.right {
            (cl, cm, cr) = (ii - 2, ii - 1, ii);
            (wl, wm, wr) = (inv_2dx, -4.0 * inv_2dx, 3.0 * inv_2dx);
        } else {
            (cl, cm, cr) = (ii - 1, ii, ii + 1);
            (wl, wm, wr) = (-inv_2dx, 0.0, inv_2dx);
        }
        let (u_l, u_m, u_r) = (prim.u.row(cl), prim.u.row(cm), prim.u.row(cr));
        let (v_l, v_m, v_r) = (prim.v.row(cl), prim.v.row(cm), prim.v.row(cr));
        let (t_l, t_m, t_r) = (prim.t.row(cl), prim.t.row(cm), prim.t.row(cr));

        let f_rows: [&mut [f64]; 4] = {
            let [a, b, c, d] = &mut flux.c;
            [a.row_mut(ii), b.row_mut(ii), c.row_mut(ii), d.row_mut(ii)]
        };
        let src_row = src.as_deref_mut().map(|s| s.row_mut(ii));
        let mut src_row = src_row;

        for j in 0..nr {
            let jj = j + NG;
            let rho = rho0[jj];
            let u = u0[jj];
            let v = v0[jj];
            let p = p0[jj];
            let r = r_of[j];
            let s = if viscous {
                let ux = wl * u_l[jj] + wm * u_m[jj] + wr * u_r[jj];
                let vx = wl * v_l[jj] + wm * v_m[jj] + wr * v_r[jj];
                let tx = wl * t_l[jj] + wm * t_m[jj] + wr * t_r[jj];
                let ur = (u0[jj + 1] - u0[jj - 1]) * inv_2dr;
                let vr = (v0[jj + 1] - v0[jj - 1]) * inv_2dr;
                let tr = (t0[jj + 1] - t0[jj - 1]) * inv_2dr;
                let v_over_r = v * inv_r[j];
                let div = ux + vr + v_over_r;
                let lam_div = -(2.0 / 3.0) * mu * div;
                physics::Stresses {
                    txx: 2.0 * mu * ux + lam_div,
                    trr: 2.0 * mu * vr + lam_div,
                    ttt: 2.0 * mu * v_over_r + lam_div,
                    txr: mu * (ur + vx),
                    qx: -kappa * tx,
                    qr: -kappa * tr,
                }
            } else {
                Default::default()
            };
            let e = p * inv_gm1 + 0.5 * rho * (u * u + v * v);
            let f = match dir {
                FluxDir::X => physics::xflux(rho, u, v, p, e, &s),
                FluxDir::R => physics::rflux(rho, u, v, p, e, &s),
            };
            f_rows[0][jj] = r * f[0];
            f_rows[1][jj] = r * f[1];
            f_rows[2][jj] = r * f[2];
            f_rows[3][jj] = r * f[3];
            if let Some(sr) = src_row.as_deref_mut() {
                sr[jj] = physics::source3(p, &s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Regime, SolverConfig};
    use ns_numerics::gas::Primitive;
    use ns_numerics::Grid;

    fn setup(regime: Regime) -> (Field, PrimField, GasModel, Patch) {
        let cfg = SolverConfig::paper(Grid::small(), regime);
        let gas = cfg.effective_gas();
        let patch = Patch::whole(cfg.grid.clone());
        let field = Field::from_primitives(patch.clone(), &gas, |x, r| Primitive {
            rho: 1.0 + 0.1 * (0.3 * x).sin() * (0.9 * r).cos(),
            u: 0.8 + 0.05 * (0.2 * x + r).cos(),
            v: 0.02 * (0.5 * x).sin() * r.min(1.5),
            p: 0.714 + 0.03 * (0.4 * x - 0.7 * r).sin(),
        });
        let prim = PrimField::zeros(&patch);
        (field, prim, gas, patch)
    }

    /// Fill ghost prim rows the way the BC module does, so the r-derivatives
    /// in the flux kernels are well-defined in this isolated test.
    fn fill_ghost_rows(prim: &mut PrimField, nxl: usize, nr: usize) {
        for i in 0..nxl + 2 * NG {
            for g in 0..NG {
                // axis mirror: row -1-g mirrors row g; v flips sign
                let (dst, srcj) = (NG - 1 - g, NG + g);
                prim.rho.set(i, dst, prim.rho.at(i, srcj));
                prim.u.set(i, dst, prim.u.at(i, srcj));
                prim.v.set(i, dst, -prim.v.at(i, srcj));
                prim.p.set(i, dst, prim.p.at(i, srcj));
                prim.t.set(i, dst, prim.t.at(i, srcj));
                // top: linear extrapolation
                let dst = NG + nr + g;
                let (a, b) = (NG + nr - 1, NG + nr - 2);
                let w = (g + 1) as f64;
                for pl in [&mut prim.rho, &mut prim.u, &mut prim.v, &mut prim.p, &mut prim.t] {
                    let val = pl.at(i, a) + w * (pl.at(i, a) - pl.at(i, b));
                    pl.set(i, dst, val);
                }
            }
        }
    }

    #[test]
    fn all_versions_recover_identical_primitives() {
        let (field, _, gas, patch) = setup(Regime::NavierStokes);
        let mut ledger = FlopLedger::default();
        let mut reference = PrimField::zeros(&patch);
        compute_prims(Version::V5, &field, &mut reference, &gas, &mut ledger);
        for v in Version::ALL {
            let mut prim = PrimField::zeros(&patch);
            compute_prims(v, &field, &mut prim, &gas, &mut ledger);
            for i in 0..field.nxl() {
                for j in 0..field.nr() {
                    let (ii, jj) = (i + NG, j + NG);
                    assert!((prim.rho.at(ii, jj) - reference.rho.at(ii, jj)).abs() < 1e-12, "{v:?} rho at {i},{j}");
                    assert!((prim.p.at(ii, jj) - reference.p.at(ii, jj)).abs() < 1e-12, "{v:?} p");
                    assert!((prim.t.at(ii, jj) - reference.t.at(ii, jj)).abs() < 1e-12, "{v:?} t");
                }
            }
        }
    }

    #[test]
    fn prims_invert_set_primitive() {
        let (field, mut prim, gas, _) = setup(Regime::NavierStokes);
        let mut ledger = FlopLedger::default();
        compute_prims(Version::V5, &field, &mut prim, &gas, &mut ledger);
        let w = field.primitive(7, 9, &gas);
        assert!((prim.rho.at(7 + NG, 9 + NG) - w.rho).abs() < 1e-12);
        assert!((prim.u.at(7 + NG, 9 + NG) - w.u).abs() < 1e-12);
        assert!((prim.p.at(7 + NG, 9 + NG) - w.p).abs() < 1e-12);
    }

    #[test]
    fn all_versions_compute_identical_fluxes() {
        for regime in [Regime::NavierStokes, Regime::Euler] {
            let (field, mut prim, gas, patch) = setup(regime);
            let mut ledger = FlopLedger::default();
            compute_prims(Version::V5, &field, &mut prim, &gas, &mut ledger);
            fill_ghost_rows(&mut prim, patch.nxl, patch.nr());
            let edges = EdgeFlags::of(&patch);
            for dir in [FluxDir::X, FluxDir::R] {
                let mut reference = FluxField::zeros(&patch);
                let mut src_ref = Array2::zeros(patch.nxl + 2 * NG, patch.nr() + 2 * NG);
                compute_flux(
                    Version::V5,
                    dir,
                    &prim,
                    &patch,
                    edges,
                    &gas,
                    &mut reference,
                    Some(&mut src_ref),
                    &mut ledger,
                );
                for v in Version::ALL {
                    let mut flux = FluxField::zeros(&patch);
                    let mut src = Array2::zeros(patch.nxl + 2 * NG, patch.nr() + 2 * NG);
                    compute_flux(v, dir, &prim, &patch, edges, &gas, &mut flux, Some(&mut src), &mut ledger);
                    for c in 0..4 {
                        for i in 0..patch.nxl {
                            for j in 0..patch.nr() {
                                let d = (flux.at(c, i as isize, j as isize) - reference.at(c, i as isize, j as isize))
                                    .abs();
                                assert!(d < 1e-11, "{regime:?} {v:?} {dir:?} comp {c} at ({i},{j}): {d}");
                            }
                        }
                    }
                    if dir == FluxDir::R {
                        for i in 0..patch.nxl {
                            for j in 0..patch.nr() {
                                let d = (src.at(i + NG, j + NG) - src_ref.at(i + NG, j + NG)).abs();
                                assert!(d < 1e-12, "{regime:?} {v:?} source at ({i},{j})");
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn uniform_state_has_zero_stress_flux_difference() {
        // For a uniform state the x-flux must be exactly r * f(const), so the
        // axial flux difference across columns is zero.
        let cfg = SolverConfig::paper(Grid::small(), Regime::NavierStokes);
        let gas = cfg.effective_gas();
        let patch = Patch::whole(cfg.grid.clone());
        let field = Field::from_primitives(patch.clone(), &gas, |_, _| Primitive { rho: 1.0, u: 0.5, v: 0.0, p: 0.7 });
        let mut prim = PrimField::zeros(&patch);
        let mut ledger = FlopLedger::default();
        compute_prims(Version::V5, &field, &mut prim, &gas, &mut ledger);
        fill_ghost_rows(&mut prim, patch.nxl, patch.nr());
        let mut flux = FluxField::zeros(&patch);
        compute_flux(Version::V5, FluxDir::X, &prim, &patch, EdgeFlags::of(&patch), &gas, &mut flux, None, &mut ledger);
        for c in 0..4 {
            for j in 0..patch.nr() {
                let a = flux.at(c, 10, j as isize);
                let b = flux.at(c, 11, j as isize);
                assert!((a - b).abs() < 1e-12, "component {c} row {j}");
            }
        }
    }

    #[test]
    fn euler_flux_has_no_viscous_terms() {
        let (field, mut prim, gas, patch) = setup(Regime::Euler);
        assert!(gas.is_inviscid());
        let mut ledger = FlopLedger::default();
        compute_prims(Version::V5, &field, &mut prim, &gas, &mut ledger);
        fill_ghost_rows(&mut prim, patch.nxl, patch.nr());
        let mut flux = FluxField::zeros(&patch);
        let mut src = Array2::zeros(patch.nxl + 2 * NG, patch.nr() + 2 * NG);
        compute_flux(
            Version::V5,
            FluxDir::R,
            &prim,
            &patch,
            EdgeFlags::of(&patch),
            &gas,
            &mut flux,
            Some(&mut src),
            &mut ledger,
        );
        // source reduces to p alone
        for i in 0..patch.nxl {
            for j in 0..patch.nr() {
                let p = prim.p.at(i + NG, j + NG);
                assert!((src.at(i + NG, j + NG) - p).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn ledger_accumulates_flux_costs() {
        let (field, mut prim, gas, patch) = setup(Regime::NavierStokes);
        let mut ledger = FlopLedger::default();
        compute_prims(Version::V5, &field, &mut prim, &gas, &mut ledger);
        fill_ghost_rows(&mut prim, patch.nxl, patch.nr());
        let pts = (patch.nxl * patch.nr()) as u64;
        assert_eq!(ledger.prims, pts * opcount::COST_PRIMS);
        let mut flux = FluxField::zeros(&patch);
        compute_flux(Version::V5, FluxDir::X, &prim, &patch, EdgeFlags::of(&patch), &gas, &mut flux, None, &mut ledger);
        assert_eq!(ledger.flux, pts * opcount::COST_FLUX_VISCOUS);
        assert_eq!(ledger.source, 0);
    }
}
