//! Versioned hot kernels: primitive recovery and flux evaluation.
//!
//! Each kernel exists in the paper's five single-processor optimization
//! flavors (see [`Version`]). The flavors are *semantically equivalent* —
//! they differ in loop order, exponentiation style, division style and
//! addressing style, exactly the transformations the paper applied to its
//! Fortran code:
//!
//! | Version | loops            | squares  | divides        | addressing |
//! |---------|------------------|----------|----------------|------------|
//! | V1      | axial innermost  | `powf`   | `/`            | indexed    |
//! | V2      | axial innermost  | `x * x`  | `/`            | indexed    |
//! | V3      | radial innermost | `x * x`  | `/`            | indexed    |
//! | V4      | radial innermost | `x * x`  | reciprocal mul | indexed    |
//! | V5      | radial innermost | `x * x`  | reciprocal mul | row slices |
//! | V6      | fused prims+flux | `x * x`  | reciprocal mul | lane chunks|
//!
//! Radial-innermost loops are stride-1 over the row-major planes (the loop
//! interchange the paper credits with ~50% of the gain); V5's row-slice
//! addressing is the analogue of the paper's COMMON-block collapse (fewer
//! address computations, friendlier to the register allocator and the
//! vectorizer).
//!
//! V6 goes one rung past the paper: primitive recovery, ghost fill and flux
//! evaluation are *fused into one sweep* over the axial stations (see
//! [`fused_sweep`]), so each radial line is consumed for fluxes while still
//! hot in cache instead of being round-tripped through memory between a
//! whole-plane prims pass and a whole-plane flux pass. Its inner loops are
//! explicitly chunked into fixed-width lanes ([`LANES`]) over the stride-1
//! row slices, giving LLVM constant trip counts to auto-vectorize. The
//! per-point arithmetic is identical to V5 (same operations in the same
//! order), so V6 results are bitwise equal to V5 — a property the tests
//! assert exactly.

use crate::config::Version;
use crate::field::{Field, FluxField, Patch, PrimField, NG};
use crate::opcount::{self, FlopLedger};
use crate::physics::{self, Derivs};
use ns_numerics::{Array2, GasModel};

/// Square helper: `powf` for V1, multiplication for the rest.
#[inline(always)]
fn sq<const POWF: bool>(x: f64) -> f64 {
    if POWF {
        x.powf(2.0)
    } else {
        x * x
    }
}

/// Which global boundaries this patch owns (affects derivative stencils
/// and ghost fills).
#[derive(Clone, Copy, Debug)]
pub struct EdgeFlags {
    /// Patch owns the global inflow boundary.
    pub left: bool,
    /// Patch owns the global outflow boundary.
    pub right: bool,
    /// Patch owns the jet axis (bottom radial boundary).
    pub bottom: bool,
    /// Patch owns the far-field row (top radial boundary).
    pub top: bool,
}

impl EdgeFlags {
    /// Edge flags of a patch.
    pub fn of(patch: &Patch) -> Self {
        Self {
            left: patch.is_global_left(),
            right: patch.is_global_right(),
            bottom: patch.is_global_bottom(),
            top: patch.is_global_top(),
        }
    }
}

// ---------------------------------------------------------------------------
// primitive recovery
// ---------------------------------------------------------------------------

/// Recover primitives `rho, u, v, p, T` from the r-weighted conservative
/// field on the interior `[0, nxl) x [0, nr)`.
pub fn compute_prims(version: Version, field: &Field, prim: &mut PrimField, gas: &GasModel, ledger: &mut FlopLedger) {
    match version {
        Version::V1 => prims_indexed::<true, false, true>(field, prim, gas),
        Version::V2 => prims_indexed::<false, false, true>(field, prim, gas),
        Version::V3 => prims_indexed::<false, false, false>(field, prim, gas),
        Version::V4 => prims_indexed::<false, true, false>(field, prim, gas),
        Version::V5 => prims_sliced(field, prim, gas),
        // The standalone (non-sweep) entries share the V6 body: V7's SoA
        // arena only pays off inside the tiled fused sweep, and the V6 body
        // is already bitwise the V7 per-point tree.
        Version::V6 | Version::V7 => prims_fused(field, prim, gas),
    }
    ledger.prims += (field.nxl() * field.nr()) as u64 * opcount::COST_PRIMS;
}

/// Indexed primitive recovery; `POWF` selects `powf` squares, `RECIP`
/// selects reciprocal multiplication, `IINNER` selects axial-innermost
/// (strided) loops.
fn prims_indexed<const POWF: bool, const RECIP: bool, const IINNER: bool>(
    field: &Field,
    prim: &mut PrimField,
    gas: &GasModel,
) {
    let (nxl, nr) = (field.nxl(), field.nr());
    let gm1 = gas.gamma - 1.0;
    let inv_rgas = 1.0 / gas.r_gas;
    // Reciprocal radius table (one division per row, amortized; V1-V3 divide
    // per point instead).
    let inv_r: Vec<f64> = (0..nr).map(|j| 1.0 / field.patch.r(j)).collect();

    let mut body = |i: usize, j: usize| {
        let (ii, jj) = (i + NG, j + NG);
        let (q0, q1, q2, q3) =
            (field.q[0].at(ii, jj), field.q[1].at(ii, jj), field.q[2].at(ii, jj), field.q[3].at(ii, jj));
        let (rho, mx, mr, e) = if RECIP {
            let w = inv_r[j];
            (q0 * w, q1 * w, q2 * w, q3 * w)
        } else {
            let r = field.patch.r(j);
            (q0 / r, q1 / r, q2 / r, q3 / r)
        };
        let (u, v) = if RECIP {
            let inv_rho = 1.0 / rho;
            (mx * inv_rho, mr * inv_rho)
        } else {
            (mx / rho, mr / rho)
        };
        let ke = 0.5 * rho * (sq::<POWF>(u) + sq::<POWF>(v));
        let p = gm1 * (e - ke);
        let t = if RECIP { p * (1.0 / rho) * inv_rgas } else { p / (rho * gas.r_gas) };
        prim.rho.set(ii, jj, rho);
        prim.u.set(ii, jj, u);
        prim.v.set(ii, jj, v);
        prim.p.set(ii, jj, p);
        prim.t.set(ii, jj, t);
    };

    if IINNER {
        for j in 0..nr {
            for i in 0..nxl {
                body(i, j);
            }
        }
    } else {
        for i in 0..nxl {
            for j in 0..nr {
                body(i, j);
            }
        }
    }
}

/// V5 primitive recovery: row-slice addressing, stride-1, reciprocals.
fn prims_sliced(field: &Field, prim: &mut PrimField, gas: &GasModel) {
    let (nxl, nr) = (field.nxl(), field.nr());
    let gm1 = gas.gamma - 1.0;
    let inv_rgas = 1.0 / gas.r_gas;
    let inv_r: Vec<f64> = (0..nr).map(|j| 1.0 / field.patch.r(j)).collect();

    for i in 0..nxl {
        let ii = i + NG;
        let q0 = &field.q[0].row(ii)[NG..NG + nr];
        let q1 = &field.q[1].row(ii)[NG..NG + nr];
        let q2 = &field.q[2].row(ii)[NG..NG + nr];
        let q3 = &field.q[3].row(ii)[NG..NG + nr];
        // Split the destination rows so the borrows don't overlap.
        let rho_row = &mut prim.rho.row_mut(ii)[NG..NG + nr];
        for j in 0..nr {
            rho_row[j] = q0[j] * inv_r[j];
        }
        let u_row = &mut prim.u.row_mut(ii)[NG..NG + nr];
        for j in 0..nr {
            u_row[j] = q1[j] * inv_r[j];
        }
        let v_row = &mut prim.v.row_mut(ii)[NG..NG + nr];
        for j in 0..nr {
            v_row[j] = q2[j] * inv_r[j];
        }
        // Second pass: divide by rho, recover p and T.
        for j in 0..nr {
            let rho = field.q[0].at(ii, j + NG) * inv_r[j];
            let inv_rho = 1.0 / rho;
            let u = prim.u.at(ii, j + NG) * inv_rho;
            let v = prim.v.at(ii, j + NG) * inv_rho;
            let e = q3[j] * inv_r[j];
            let ke = 0.5 * rho * (u * u + v * v);
            let p = gm1 * (e - ke);
            prim.u.set(ii, j + NG, u);
            prim.v.set(ii, j + NG, v);
            prim.p.set(ii, j + NG, p);
            prim.t.set(ii, j + NG, p * inv_rho * inv_rgas);
        }
    }
}

// ---------------------------------------------------------------------------
// flux kernels
// ---------------------------------------------------------------------------

/// Derivative stencil at interior point `(i, j)` (raw indices `ii, jj`);
/// (takes the full stencil context — splitting it would add per-point cost)
/// x-derivatives fall back to second-order one-sided stencils at owned
/// global boundaries, r-derivatives are always central (ghost rows are
/// filled by the boundary module before any flux kernel runs).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn derivs_at(
    prim: &PrimField,
    i: usize,
    nxl: usize,
    edges: EdgeFlags,
    ii: usize,
    jj: usize,
    inv_2dx: f64,
    inv_2dr: f64,
) -> Derivs {
    let dx_of = |a: &Array2| -> f64 {
        if i == 0 && edges.left {
            (-3.0 * a.at(ii, jj) + 4.0 * a.at(ii + 1, jj) - a.at(ii + 2, jj)) * inv_2dx
        } else if i == nxl - 1 && edges.right {
            (3.0 * a.at(ii, jj) - 4.0 * a.at(ii - 1, jj) + a.at(ii - 2, jj)) * inv_2dx
        } else {
            (a.at(ii + 1, jj) - a.at(ii - 1, jj)) * inv_2dx
        }
    };
    let dr_of = |a: &Array2| -> f64 { (a.at(ii, jj + 1) - a.at(ii, jj - 1)) * inv_2dr };
    Derivs {
        ux: dx_of(&prim.u),
        ur: dr_of(&prim.u),
        vx: dx_of(&prim.v),
        vr: dr_of(&prim.v),
        tx: dx_of(&prim.t),
        tr: dr_of(&prim.t),
    }
}

/// Direction of a flux kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FluxDir {
    /// Axial flux `F` (feeds x-sweeps).
    X,
    /// Radial flux `G` plus the source plane (feeds r-sweeps).
    R,
}

/// Compute the r-weighted flux (`F` or `G`) on the interior, and for
/// [`FluxDir::R`] also the source plane `p - t_theta_theta`.
#[allow(clippy::too_many_arguments)]
pub fn compute_flux(
    version: Version,
    dir: FluxDir,
    prim: &PrimField,
    patch: &Patch,
    edges: EdgeFlags,
    gas: &GasModel,
    flux: &mut FluxField,
    src: Option<&mut Array2>,
    ledger: &mut FlopLedger,
) {
    compute_flux_range(version, dir, prim, patch, edges, gas, flux, src, 0..patch.nxl, ledger);
}

/// [`compute_flux`] restricted to the axial columns in `i_range` — the
/// building block of the Version 6 overlap, which computes the interior
/// while the boundary primitive columns are in flight and finishes the
/// edge columns afterwards.
#[allow(clippy::too_many_arguments)]
pub fn compute_flux_range(
    version: Version,
    dir: FluxDir,
    prim: &PrimField,
    patch: &Patch,
    edges: EdgeFlags,
    gas: &GasModel,
    flux: &mut FluxField,
    src: Option<&mut Array2>,
    i_range: std::ops::Range<usize>,
    ledger: &mut FlopLedger,
) {
    debug_assert!(i_range.end <= patch.nxl);
    if i_range.is_empty() {
        return;
    }
    let viscous = !gas.is_inviscid();
    let pts = (i_range.len() * patch.nr()) as u64;
    match version {
        Version::V1 => flux_indexed::<true, false, true>(dir, prim, patch, edges, gas, flux, src, i_range),
        Version::V2 => flux_indexed::<false, false, true>(dir, prim, patch, edges, gas, flux, src, i_range),
        Version::V3 => flux_indexed::<false, false, false>(dir, prim, patch, edges, gas, flux, src, i_range),
        Version::V4 => flux_indexed::<false, true, false>(dir, prim, patch, edges, gas, flux, src, i_range),
        Version::V5 => flux_sliced(dir, prim, patch, edges, gas, flux, src, i_range),
        // V7 edge columns use the V6 chunked body (bitwise-identical): the
        // SoA tiled path only covers the fused interior sweep.
        Version::V6 | Version::V7 => flux_chunked(dir, prim, patch, edges, gas, flux, src, i_range),
    }
    ledger.flux += pts * if viscous { opcount::COST_FLUX_VISCOUS } else { opcount::COST_FLUX_INVISCID };
    if dir == FluxDir::R {
        ledger.source += pts * opcount::COST_SOURCE;
    }
}

/// Indexed flux kernel shared by V1-V4 (see [`compute_flux`]).
#[allow(clippy::too_many_arguments)]
fn flux_indexed<const POWF: bool, const RECIP: bool, const IINNER: bool>(
    dir: FluxDir,
    prim: &PrimField,
    patch: &Patch,
    edges: EdgeFlags,
    gas: &GasModel,
    flux: &mut FluxField,
    mut src: Option<&mut Array2>,
    i_range: std::ops::Range<usize>,
) {
    let (nxl, nr) = (patch.nxl, patch.nr());
    let inv_2dx = 1.0 / (2.0 * patch.grid.dx);
    let inv_2dr = 1.0 / (2.0 * patch.grid.dr);
    let inv_gm1 = 1.0 / (gas.gamma - 1.0);
    let viscous = !gas.is_inviscid();
    let inv_r: Vec<f64> = (0..nr).map(|j| 1.0 / patch.r(j)).collect();

    let mut body = |i: usize, j: usize, src: &mut Option<&mut Array2>| {
        let (ii, jj) = (i + NG, j + NG);
        let rho = prim.rho.at(ii, jj);
        let u = prim.u.at(ii, jj);
        let v = prim.v.at(ii, jj);
        let p = prim.p.at(ii, jj);
        let r = patch.r(j);
        let s = if viscous {
            let d = derivs_at(prim, i, nxl, edges, ii, jj, inv_2dx, inv_2dr);
            let v_over_r = if RECIP { v * inv_r[j] } else { v / r };
            physics::stresses(gas, &d, v_over_r)
        } else {
            Default::default()
        };
        let e = if POWF {
            p * inv_gm1 + 0.5 * rho * (u.powf(2.0) + v.powf(2.0))
        } else {
            p * inv_gm1 + 0.5 * rho * (u * u + v * v)
        };
        let f = match dir {
            FluxDir::X => physics::xflux(rho, u, v, p, e, &s),
            FluxDir::R => physics::rflux(rho, u, v, p, e, &s),
        };
        for c in 0..4 {
            flux.c[c].set(ii, jj, r * f[c]);
        }
        if dir == FluxDir::R {
            if let Some(sp) = src.as_deref_mut() {
                sp.set(ii, jj, physics::source3(p, &s));
            }
        }
    };

    if IINNER {
        for j in 0..nr {
            for i in i_range.clone() {
                body(i, j, &mut src);
            }
        }
    } else {
        for i in i_range {
            for j in 0..nr {
                body(i, j, &mut src);
            }
        }
    }
}

/// V5 flux kernel: row-slice addressing over stride-1 inner loops.
#[allow(clippy::too_many_arguments)]
fn flux_sliced(
    dir: FluxDir,
    prim: &PrimField,
    patch: &Patch,
    edges: EdgeFlags,
    gas: &GasModel,
    flux: &mut FluxField,
    mut src: Option<&mut Array2>,
    i_range: std::ops::Range<usize>,
) {
    let (nxl, nr) = (patch.nxl, patch.nr());
    let inv_2dx = 1.0 / (2.0 * patch.grid.dx);
    let inv_2dr = 1.0 / (2.0 * patch.grid.dr);
    let inv_gm1 = 1.0 / (gas.gamma - 1.0);
    let viscous = !gas.is_inviscid();
    let mu = gas.mu;
    let kappa = gas.kappa;
    let r_of: Vec<f64> = (0..nr).map(|j| patch.r(j)).collect();
    let inv_r: Vec<f64> = r_of.iter().map(|&r| 1.0 / r).collect();

    for i in i_range {
        let ii = i + NG;
        // Row slices of the stencil neighborhood, bound once per row: the
        // "collapse the COMMON blocks" analogue (single base pointer + offset
        // addressing in the inner loop).
        let u0 = prim.u.row(ii);
        let v0 = prim.v.row(ii);
        let t0 = prim.t.row(ii);
        let rho0 = prim.rho.row(ii);
        let p0 = prim.p.row(ii);
        // x-stencil rows with one-sided fallback at owned global edges.
        let (cl, cm, cr, wl, wm, wr);
        if i == 0 && edges.left {
            // -3 f0 + 4 f1 - f2 at (ii, ii+1, ii+2)
            (cl, cm, cr) = (ii, ii + 1, ii + 2);
            (wl, wm, wr) = (-3.0 * inv_2dx, 4.0 * inv_2dx, -inv_2dx);
        } else if i == nxl - 1 && edges.right {
            (cl, cm, cr) = (ii - 2, ii - 1, ii);
            (wl, wm, wr) = (inv_2dx, -4.0 * inv_2dx, 3.0 * inv_2dx);
        } else {
            (cl, cm, cr) = (ii - 1, ii, ii + 1);
            (wl, wm, wr) = (-inv_2dx, 0.0, inv_2dx);
        }
        let (u_l, u_m, u_r) = (prim.u.row(cl), prim.u.row(cm), prim.u.row(cr));
        let (v_l, v_m, v_r) = (prim.v.row(cl), prim.v.row(cm), prim.v.row(cr));
        let (t_l, t_m, t_r) = (prim.t.row(cl), prim.t.row(cm), prim.t.row(cr));

        let f_rows: [&mut [f64]; 4] = {
            let [a, b, c, d] = &mut flux.c;
            [a.row_mut(ii), b.row_mut(ii), c.row_mut(ii), d.row_mut(ii)]
        };
        let src_row = src.as_deref_mut().map(|s| s.row_mut(ii));
        let mut src_row = src_row;

        for j in 0..nr {
            let jj = j + NG;
            let rho = rho0[jj];
            let u = u0[jj];
            let v = v0[jj];
            let p = p0[jj];
            let r = r_of[j];
            let s = if viscous {
                let ux = wl * u_l[jj] + wm * u_m[jj] + wr * u_r[jj];
                let vx = wl * v_l[jj] + wm * v_m[jj] + wr * v_r[jj];
                let tx = wl * t_l[jj] + wm * t_m[jj] + wr * t_r[jj];
                let ur = (u0[jj + 1] - u0[jj - 1]) * inv_2dr;
                let vr = (v0[jj + 1] - v0[jj - 1]) * inv_2dr;
                let tr = (t0[jj + 1] - t0[jj - 1]) * inv_2dr;
                let v_over_r = v * inv_r[j];
                let div = ux + vr + v_over_r;
                let lam_div = -(2.0 / 3.0) * mu * div;
                physics::Stresses {
                    txx: 2.0 * mu * ux + lam_div,
                    trr: 2.0 * mu * vr + lam_div,
                    ttt: 2.0 * mu * v_over_r + lam_div,
                    txr: mu * (ur + vx),
                    qx: -kappa * tx,
                    qr: -kappa * tr,
                }
            } else {
                Default::default()
            };
            let e = p * inv_gm1 + 0.5 * rho * (u * u + v * v);
            let f = match dir {
                FluxDir::X => physics::xflux(rho, u, v, p, e, &s),
                FluxDir::R => physics::rflux(rho, u, v, p, e, &s),
            };
            f_rows[0][jj] = r * f[0];
            f_rows[1][jj] = r * f[1];
            f_rows[2][jj] = r * f[2];
            f_rows[3][jj] = r * f[3];
            if let Some(sr) = src_row.as_deref_mut() {
                sr[jj] = physics::source3(p, &s);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// V6: fused single-sweep prims+flux with lane-chunked inner loops
// ---------------------------------------------------------------------------

/// Fixed inner-loop lane width of the V6 kernels. The chunked loops run in
/// blocks of `LANES` contiguous radial points (constant trip count, stride-1)
/// followed by a scalar remainder, which is the shape LLVM's auto-vectorizer
/// handles best on every target we care about.
pub const LANES: usize = 8;

/// Reborrow `N` contiguous lanes of a row starting at `at` as a fixed-size
/// array: constant-trip loops over these carry no bounds checks, which is
/// what lets the chunked V6 bodies vectorize.
#[inline(always)]
fn lanes<const N: usize>(s: &[f64], at: usize) -> &[f64; N] {
    s[at..at + N].try_into().unwrap()
}

/// Mutable counterpart of [`lanes`].
#[inline(always)]
fn lanes_mut<const N: usize>(s: &mut [f64], at: usize) -> &mut [f64; N] {
    (&mut s[at..at + N]).try_into().unwrap()
}

/// V6 primitive recovery of one axial station `ii` (raw index): single pass
/// over the row — V5 makes two (momenta first, then divide by `rho`), V6
/// keeps the per-point temporaries in registers and touches each `q` row
/// exactly once. Arithmetic is op-for-op identical to V5.
#[inline(always)]
fn prims_row_fused(field: &Field, prim: &mut PrimField, ii: usize, nr: usize, gm1: f64, inv_rgas: f64, inv_r: &[f64]) {
    let q0 = &field.q[0].row(ii)[NG..NG + nr];
    let q1 = &field.q[1].row(ii)[NG..NG + nr];
    let q2 = &field.q[2].row(ii)[NG..NG + nr];
    let q3 = &field.q[3].row(ii)[NG..NG + nr];
    let rho_row = &mut prim.rho.row_mut(ii)[NG..NG + nr];
    let u_row = &mut prim.u.row_mut(ii)[NG..NG + nr];
    let v_row = &mut prim.v.row_mut(ii)[NG..NG + nr];
    let p_row = &mut prim.p.row_mut(ii)[NG..NG + nr];
    let t_row = &mut prim.t.row_mut(ii)[NG..NG + nr];

    let mut base = 0;
    while base + LANES <= nr {
        let q0c = lanes::<LANES>(q0, base);
        let q1c = lanes::<LANES>(q1, base);
        let q2c = lanes::<LANES>(q2, base);
        let q3c = lanes::<LANES>(q3, base);
        let wc = lanes::<LANES>(inv_r, base);
        let rhoc = lanes_mut::<LANES>(rho_row, base);
        let uc = lanes_mut::<LANES>(u_row, base);
        let vc = lanes_mut::<LANES>(v_row, base);
        let pc = lanes_mut::<LANES>(p_row, base);
        let tc = lanes_mut::<LANES>(t_row, base);
        // Stage the reciprocals as a lane block so the divides issue as
        // packed ops instead of serializing the main loop's chain.
        let mut inv_rho = [0.0; LANES];
        for l in 0..LANES {
            rhoc[l] = q0c[l] * wc[l];
            inv_rho[l] = 1.0 / rhoc[l];
        }
        for l in 0..LANES {
            let w = wc[l];
            let rho = rhoc[l];
            let u = (q1c[l] * w) * inv_rho[l];
            let v = (q2c[l] * w) * inv_rho[l];
            let e = q3c[l] * w;
            let ke = 0.5 * rho * (u * u + v * v);
            let p = gm1 * (e - ke);
            uc[l] = u;
            vc[l] = v;
            pc[l] = p;
            tc[l] = p * inv_rho[l] * inv_rgas;
        }
        base += LANES;
    }
    for j in base..nr {
        let w = inv_r[j];
        let rho = q0[j] * w;
        let inv_rho = 1.0 / rho;
        let u = (q1[j] * w) * inv_rho;
        let v = (q2[j] * w) * inv_rho;
        let e = q3[j] * w;
        let ke = 0.5 * rho * (u * u + v * v);
        let p = gm1 * (e - ke);
        rho_row[j] = rho;
        u_row[j] = u;
        v_row[j] = v;
        p_row[j] = p;
        t_row[j] = p * inv_rho * inv_rgas;
    }
}

/// V6 plane-wide primitive recovery: one fused pass per row (the standalone
/// entry used by [`compute_prims`]; the operator path goes through
/// [`fused_sweep`] instead, which also emits the fluxes in the same sweep).
fn prims_fused(field: &Field, prim: &mut PrimField, gas: &GasModel) {
    let (nxl, nr) = (field.nxl(), field.nr());
    let gm1 = gas.gamma - 1.0;
    let inv_rgas = 1.0 / gas.r_gas;
    let inv_r: Vec<f64> = (0..nr).map(|j| 1.0 / field.patch.r(j)).collect();
    for i in 0..nxl {
        prims_row_fused(field, prim, i + NG, nr, gm1, inv_rgas, &inv_r);
    }
}

/// V6 flux evaluation of one axial station: the V5 row-slice body with the
/// inner loop chunked into [`LANES`]-wide blocks. Per-point arithmetic is
/// identical to [`flux_sliced`].
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn flux_row_chunked(
    dir: FluxDir,
    prim: &PrimField,
    patch: &Patch,
    edges: EdgeFlags,
    gas: &GasModel,
    flux: &mut FluxField,
    src: Option<&mut Array2>,
    i: usize,
    r_of: &[f64],
    inv_r: &[f64],
) {
    let (nxl, nr) = (patch.nxl, patch.nr());
    let inv_2dx = 1.0 / (2.0 * patch.grid.dx);
    let inv_2dr = 1.0 / (2.0 * patch.grid.dr);
    let inv_gm1 = 1.0 / (gas.gamma - 1.0);
    let viscous = !gas.is_inviscid();
    let mu = gas.mu;
    let kappa = gas.kappa;
    let ii = i + NG;
    let u0 = prim.u.row(ii);
    let v0 = prim.v.row(ii);
    let t0 = prim.t.row(ii);
    let rho0 = prim.rho.row(ii);
    let p0 = prim.p.row(ii);
    let (cl, cm, cr, wl, wm, wr);
    if i == 0 && edges.left {
        (cl, cm, cr) = (ii, ii + 1, ii + 2);
        (wl, wm, wr) = (-3.0 * inv_2dx, 4.0 * inv_2dx, -inv_2dx);
    } else if i == nxl - 1 && edges.right {
        (cl, cm, cr) = (ii - 2, ii - 1, ii);
        (wl, wm, wr) = (inv_2dx, -4.0 * inv_2dx, 3.0 * inv_2dx);
    } else {
        (cl, cm, cr) = (ii - 1, ii, ii + 1);
        (wl, wm, wr) = (-inv_2dx, 0.0, inv_2dx);
    }
    let (u_l, u_m, u_r) = (prim.u.row(cl), prim.u.row(cm), prim.u.row(cr));
    let (v_l, v_m, v_r) = (prim.v.row(cl), prim.v.row(cm), prim.v.row(cr));
    let (t_l, t_m, t_r) = (prim.t.row(cl), prim.t.row(cm), prim.t.row(cr));

    let [fa, fb, fc, fd] = &mut flux.c;
    let (f0_row, f1_row, f2_row, f3_row) = (fa.row_mut(ii), fb.row_mut(ii), fc.row_mut(ii), fd.row_mut(ii));
    let mut src_row = src.map(|s| s.row_mut(ii));

    let mut base = 0;
    while base + LANES <= nr {
        let at = base + NG;
        let rhoc = lanes::<LANES>(rho0, at);
        let uc = lanes::<LANES>(u0, at);
        let vc = lanes::<LANES>(v0, at);
        let pc = lanes::<LANES>(p0, at);
        let rc = lanes::<LANES>(r_of, base);
        let wc = lanes::<LANES>(inv_r, base);
        // radial stencil neighbors as shifted windows of the same rows
        let (u_dn, u_up) = (lanes::<LANES>(u0, at - 1), lanes::<LANES>(u0, at + 1));
        let (v_dn, v_up) = (lanes::<LANES>(v0, at - 1), lanes::<LANES>(v0, at + 1));
        let (t_dn, t_up) = (lanes::<LANES>(t0, at - 1), lanes::<LANES>(t0, at + 1));
        let (ulc, umc, urc) = (lanes::<LANES>(u_l, at), lanes::<LANES>(u_m, at), lanes::<LANES>(u_r, at));
        let (vlc, vmc, vrc) = (lanes::<LANES>(v_l, at), lanes::<LANES>(v_m, at), lanes::<LANES>(v_r, at));
        let (tlc, tmc, trc) = (lanes::<LANES>(t_l, at), lanes::<LANES>(t_m, at), lanes::<LANES>(t_r, at));
        let f0c = lanes_mut::<LANES>(&mut *f0_row, at);
        let f1c = lanes_mut::<LANES>(&mut *f1_row, at);
        let f2c = lanes_mut::<LANES>(&mut *f2_row, at);
        let f3c = lanes_mut::<LANES>(&mut *f3_row, at);
        for l in 0..LANES {
            let rho = rhoc[l];
            let u = uc[l];
            let v = vc[l];
            let p = pc[l];
            let r = rc[l];
            let s = if viscous {
                let ux = wl * ulc[l] + wm * umc[l] + wr * urc[l];
                let vx = wl * vlc[l] + wm * vmc[l] + wr * vrc[l];
                let tx = wl * tlc[l] + wm * tmc[l] + wr * trc[l];
                let ur = (u_up[l] - u_dn[l]) * inv_2dr;
                let vr = (v_up[l] - v_dn[l]) * inv_2dr;
                let tr = (t_up[l] - t_dn[l]) * inv_2dr;
                let v_over_r = v * wc[l];
                let div = ux + vr + v_over_r;
                let lam_div = -(2.0 / 3.0) * mu * div;
                physics::Stresses {
                    txx: 2.0 * mu * ux + lam_div,
                    trr: 2.0 * mu * vr + lam_div,
                    ttt: 2.0 * mu * v_over_r + lam_div,
                    txr: mu * (ur + vx),
                    qx: -kappa * tx,
                    qr: -kappa * tr,
                }
            } else {
                Default::default()
            };
            let e = p * inv_gm1 + 0.5 * rho * (u * u + v * v);
            let f = match dir {
                FluxDir::X => physics::xflux(rho, u, v, p, e, &s),
                FluxDir::R => physics::rflux(rho, u, v, p, e, &s),
            };
            f0c[l] = r * f[0];
            f1c[l] = r * f[1];
            f2c[l] = r * f[2];
            f3c[l] = r * f[3];
            if let Some(sr) = src_row.as_deref_mut() {
                sr[base + NG + l] = physics::source3(p, &s);
            }
        }
        base += LANES;
    }
    for j in base..nr {
        let jj = j + NG;
        let rho = rho0[jj];
        let u = u0[jj];
        let v = v0[jj];
        let p = p0[jj];
        let r = r_of[j];
        let s = if viscous {
            let ux = wl * u_l[jj] + wm * u_m[jj] + wr * u_r[jj];
            let vx = wl * v_l[jj] + wm * v_m[jj] + wr * v_r[jj];
            let tx = wl * t_l[jj] + wm * t_m[jj] + wr * t_r[jj];
            let ur = (u0[jj + 1] - u0[jj - 1]) * inv_2dr;
            let vr = (v0[jj + 1] - v0[jj - 1]) * inv_2dr;
            let tr = (t0[jj + 1] - t0[jj - 1]) * inv_2dr;
            let v_over_r = v * inv_r[j];
            let div = ux + vr + v_over_r;
            let lam_div = -(2.0 / 3.0) * mu * div;
            physics::Stresses {
                txx: 2.0 * mu * ux + lam_div,
                trr: 2.0 * mu * vr + lam_div,
                ttt: 2.0 * mu * v_over_r + lam_div,
                txr: mu * (ur + vx),
                qx: -kappa * tx,
                qr: -kappa * tr,
            }
        } else {
            Default::default()
        };
        let e = p * inv_gm1 + 0.5 * rho * (u * u + v * v);
        let f = match dir {
            FluxDir::X => physics::xflux(rho, u, v, p, e, &s),
            FluxDir::R => physics::rflux(rho, u, v, p, e, &s),
        };
        f0_row[jj] = r * f[0];
        f1_row[jj] = r * f[1];
        f2_row[jj] = r * f[2];
        f3_row[jj] = r * f[3];
        if let Some(sr) = src_row.as_deref_mut() {
            sr[jj] = physics::source3(p, &s);
        }
    }
}

/// V6 flux kernel over a station range (the standalone entry used by
/// [`compute_flux_range`]; the operator path uses [`fused_sweep`]).
#[allow(clippy::too_many_arguments)]
fn flux_chunked(
    dir: FluxDir,
    prim: &PrimField,
    patch: &Patch,
    edges: EdgeFlags,
    gas: &GasModel,
    flux: &mut FluxField,
    mut src: Option<&mut Array2>,
    i_range: std::ops::Range<usize>,
) {
    let nr = patch.nr();
    let r_of: Vec<f64> = (0..nr).map(|j| patch.r(j)).collect();
    let inv_r: Vec<f64> = r_of.iter().map(|&r| 1.0 / r).collect();
    for i in i_range {
        flux_row_chunked(dir, prim, patch, edges, gas, flux, src.as_deref_mut(), i, &r_of, &inv_r);
    }
}

/// Fill the radial ghost points of one freshly computed primitive station
/// (axis mirror below, far-field extrapolation above) — exactly what the
/// plane-wide `bc::mirror_prims_axis` / `bc::extrap_prims_top` pair does for
/// this station, done while the row is still in cache.
#[inline]
fn fused_row_ghosts(prim: &mut PrimField, ii: usize, nr: usize) {
    crate::bc::mirror_prims_axis_row(prim, ii);
    crate::bc::extrap_prims_top_row(prim, ii, nr);
}

/// V6: recover primitives (plus their radial ghosts) for an explicit list of
/// interior stations — the boundary stations an x-sweep must compute *before*
/// posting the halo exchange, ahead of the fused interior sweep.
pub fn fused_boundary_prims(
    field: &Field,
    prim: &mut PrimField,
    gas: &GasModel,
    stations: &[usize],
    ledger: &mut FlopLedger,
) {
    let nr = field.nr();
    let gm1 = gas.gamma - 1.0;
    let inv_rgas = 1.0 / gas.r_gas;
    let inv_r: Vec<f64> = (0..nr).map(|j| 1.0 / field.patch.r(j)).collect();
    for &i in stations {
        prims_row_fused(field, prim, i + NG, nr, gm1, inv_rgas, &inv_r);
        fused_row_ghosts(prim, i + NG, nr);
    }
    ledger.prims += (stations.len() * nr) as u64 * opcount::COST_PRIMS;
}

/// Highest station whose primitives must be available before the flux at
/// station `e` can be evaluated.
#[inline]
pub(crate) fn flux_needs(e: usize, nxl: usize, edges: EdgeFlags, viscous: bool) -> usize {
    if !viscous {
        e // inviscid fluxes are pointwise
    } else if e == 0 && edges.left {
        2 // one-sided forward stencil
    } else if e == nxl - 1 && edges.right {
        nxl - 1 // one-sided backward stencil
    } else {
        e + 1 // central stencil
    }
}

/// The V6 tentpole: one fused sweep over the axial stations that recovers
/// primitives, fills their radial ghosts, and evaluates fluxes as soon as
/// each station's stencil becomes available — a software pipeline in `i`.
///
/// `prim_range` is swept in ascending order; stations below `prim_range.start`
/// and the optional `hi_pre` station are assumed precomputed (by
/// [`fused_boundary_prims`]). Flux stations in `flux_range` are emitted the
/// moment their stencil is complete and any stragglers are flushed at the
/// end, so callers may pass flux ranges that reach into halo-dependent
/// stations only when those ghosts are already filled.
///
/// Ledger accounting matches the unfused V5 path exactly:
/// `|prim_range| * nr` primitive points and `|flux_range| * nr` flux points.
#[allow(clippy::too_many_arguments)]
pub fn fused_sweep(
    dir: FluxDir,
    field: &Field,
    prim: &mut PrimField,
    edges: EdgeFlags,
    gas: &GasModel,
    flux: &mut FluxField,
    mut src: Option<&mut Array2>,
    prim_range: std::ops::Range<usize>,
    flux_range: std::ops::Range<usize>,
    hi_pre: Option<usize>,
    ledger: &mut FlopLedger,
) {
    let patch = &field.patch;
    let (nxl, nr) = (patch.nxl, patch.nr());
    debug_assert!(prim_range.end <= nxl && flux_range.end <= nxl);
    let gm1 = gas.gamma - 1.0;
    let inv_rgas = 1.0 / gas.r_gas;
    let viscous = !gas.is_inviscid();
    let r_of: Vec<f64> = (0..nr).map(|j| patch.r(j)).collect();
    let inv_r: Vec<f64> = r_of.iter().map(|&r| 1.0 / r).collect();

    let mut next_flux = flux_range.start;
    for i in prim_range.clone() {
        prims_row_fused(field, prim, i + NG, nr, gm1, inv_rgas, &inv_r);
        fused_row_ghosts(prim, i + NG, nr);
        while next_flux < flux_range.end {
            let need = flux_needs(next_flux, nxl, edges, viscous);
            if need > i && hi_pre != Some(need) {
                break;
            }
            flux_row_chunked(dir, prim, patch, edges, gas, flux, src.as_deref_mut(), next_flux, &r_of, &inv_r);
            next_flux += 1;
        }
    }
    // Flush whatever the pipeline could not prove ready (short ranges, or
    // flux stations whose stencil reaches into already-filled halo ghosts).
    while next_flux < flux_range.end {
        flux_row_chunked(dir, prim, patch, edges, gas, flux, src.as_deref_mut(), next_flux, &r_of, &inv_r);
        next_flux += 1;
    }

    ledger.prims += (prim_range.len() * nr) as u64 * opcount::COST_PRIMS;
    ledger.flux +=
        (flux_range.len() * nr) as u64 * if viscous { opcount::COST_FLUX_VISCOUS } else { opcount::COST_FLUX_INVISCID };
    if dir == FluxDir::R {
        ledger.source += (flux_range.len() * nr) as u64 * opcount::COST_SOURCE;
    }
}

/// Version dispatch for the operator path's fused sweep: V7 runs the SoA
/// tiled sweep from [`crate::soa`] (lazily arming the sweep workspace in
/// `soa`), every earlier fused version runs [`fused_sweep`]. Both are
/// bitwise-equal drop-ins for each other (oracle- and property-tested).
///
/// `exports` lists the swept stations whose primitives must land back in
/// the AoS `prim` planes for later consumers (edge-column flux passes, the
/// characteristic-outflow stencil); V6 writes every station to AoS anyway,
/// so the list only drives the V7 SoA→AoS boundary.
#[allow(clippy::too_many_arguments)]
pub fn fused_sweep_version(
    version: Version,
    tile_r: usize,
    soa: &mut Option<Box<crate::soa::SoaWs>>,
    dir: FluxDir,
    field: &Field,
    prim: &mut PrimField,
    edges: EdgeFlags,
    gas: &GasModel,
    flux: &mut FluxField,
    src: Option<&mut Array2>,
    prim_range: std::ops::Range<usize>,
    flux_range: std::ops::Range<usize>,
    hi_pre: Option<usize>,
    exports: &[usize],
    ledger: &mut FlopLedger,
) {
    if version == Version::V7 {
        let ws = soa.get_or_insert_with(|| Box::new(crate::soa::SoaWs::new(&field.patch)));
        crate::soa::fused_sweep(
            dir, field, prim, edges, gas, flux, src, prim_range, flux_range, hi_pre, exports, ws, tile_r, ledger,
        );
    } else {
        fused_sweep(dir, field, prim, edges, gas, flux, src, prim_range, flux_range, hi_pre, ledger);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Regime, SolverConfig};
    use ns_numerics::gas::Primitive;
    use ns_numerics::Grid;

    fn setup(regime: Regime) -> (Field, PrimField, GasModel, Patch) {
        let cfg = SolverConfig::paper(Grid::small(), regime);
        let gas = cfg.effective_gas();
        let patch = Patch::whole(cfg.grid.clone());
        let field = Field::from_primitives(patch.clone(), &gas, |x, r| Primitive {
            rho: 1.0 + 0.1 * (0.3 * x).sin() * (0.9 * r).cos(),
            u: 0.8 + 0.05 * (0.2 * x + r).cos(),
            v: 0.02 * (0.5 * x).sin() * r.min(1.5),
            p: 0.714 + 0.03 * (0.4 * x - 0.7 * r).sin(),
        });
        let prim = PrimField::zeros(&patch);
        (field, prim, gas, patch)
    }

    /// Fill ghost prim rows the way the BC module does, so the r-derivatives
    /// in the flux kernels are well-defined in this isolated test.
    fn fill_ghost_rows(prim: &mut PrimField, nxl: usize, nr: usize) {
        for i in 0..nxl + 2 * NG {
            for g in 0..NG {
                // axis mirror: row -1-g mirrors row g; v flips sign
                let (dst, srcj) = (NG - 1 - g, NG + g);
                prim.rho.set(i, dst, prim.rho.at(i, srcj));
                prim.u.set(i, dst, prim.u.at(i, srcj));
                prim.v.set(i, dst, -prim.v.at(i, srcj));
                prim.p.set(i, dst, prim.p.at(i, srcj));
                prim.t.set(i, dst, prim.t.at(i, srcj));
                // top: linear extrapolation
                let dst = NG + nr + g;
                let (a, b) = (NG + nr - 1, NG + nr - 2);
                let w = (g + 1) as f64;
                for pl in [&mut prim.rho, &mut prim.u, &mut prim.v, &mut prim.p, &mut prim.t] {
                    let val = pl.at(i, a) + w * (pl.at(i, a) - pl.at(i, b));
                    pl.set(i, dst, val);
                }
            }
        }
    }

    #[test]
    fn all_versions_recover_identical_primitives() {
        let (field, _, gas, patch) = setup(Regime::NavierStokes);
        let mut ledger = FlopLedger::default();
        let mut reference = PrimField::zeros(&patch);
        compute_prims(Version::V5, &field, &mut reference, &gas, &mut ledger);
        for v in Version::ALL {
            let mut prim = PrimField::zeros(&patch);
            compute_prims(v, &field, &mut prim, &gas, &mut ledger);
            for i in 0..field.nxl() {
                for j in 0..field.nr() {
                    let (ii, jj) = (i + NG, j + NG);
                    assert!((prim.rho.at(ii, jj) - reference.rho.at(ii, jj)).abs() < 1e-12, "{v:?} rho at {i},{j}");
                    assert!((prim.p.at(ii, jj) - reference.p.at(ii, jj)).abs() < 1e-12, "{v:?} p");
                    assert!((prim.t.at(ii, jj) - reference.t.at(ii, jj)).abs() < 1e-12, "{v:?} t");
                }
            }
        }
    }

    #[test]
    fn prims_invert_set_primitive() {
        let (field, mut prim, gas, _) = setup(Regime::NavierStokes);
        let mut ledger = FlopLedger::default();
        compute_prims(Version::V5, &field, &mut prim, &gas, &mut ledger);
        let w = field.primitive(7, 9, &gas);
        assert!((prim.rho.at(7 + NG, 9 + NG) - w.rho).abs() < 1e-12);
        assert!((prim.u.at(7 + NG, 9 + NG) - w.u).abs() < 1e-12);
        assert!((prim.p.at(7 + NG, 9 + NG) - w.p).abs() < 1e-12);
    }

    #[test]
    fn all_versions_compute_identical_fluxes() {
        for regime in [Regime::NavierStokes, Regime::Euler] {
            let (field, mut prim, gas, patch) = setup(regime);
            let mut ledger = FlopLedger::default();
            compute_prims(Version::V5, &field, &mut prim, &gas, &mut ledger);
            fill_ghost_rows(&mut prim, patch.nxl, patch.nr());
            let edges = EdgeFlags::of(&patch);
            for dir in [FluxDir::X, FluxDir::R] {
                let mut reference = FluxField::zeros(&patch);
                let mut src_ref = Array2::zeros(patch.nxl + 2 * NG, patch.nr() + 2 * NG);
                compute_flux(
                    Version::V5,
                    dir,
                    &prim,
                    &patch,
                    edges,
                    &gas,
                    &mut reference,
                    Some(&mut src_ref),
                    &mut ledger,
                );
                for v in Version::ALL {
                    let mut flux = FluxField::zeros(&patch);
                    let mut src = Array2::zeros(patch.nxl + 2 * NG, patch.nr() + 2 * NG);
                    compute_flux(v, dir, &prim, &patch, edges, &gas, &mut flux, Some(&mut src), &mut ledger);
                    for c in 0..4 {
                        for i in 0..patch.nxl {
                            for j in 0..patch.nr() {
                                let d = (flux.at(c, i as isize, j as isize) - reference.at(c, i as isize, j as isize))
                                    .abs();
                                assert!(d < 1e-11, "{regime:?} {v:?} {dir:?} comp {c} at ({i},{j}): {d}");
                            }
                        }
                    }
                    if dir == FluxDir::R {
                        for i in 0..patch.nxl {
                            for j in 0..patch.nr() {
                                let d = (src.at(i + NG, j + NG) - src_ref.at(i + NG, j + NG)).abs();
                                assert!(d < 1e-12, "{regime:?} {v:?} source at ({i},{j})");
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn uniform_state_has_zero_stress_flux_difference() {
        // For a uniform state the x-flux must be exactly r * f(const), so the
        // axial flux difference across columns is zero.
        let cfg = SolverConfig::paper(Grid::small(), Regime::NavierStokes);
        let gas = cfg.effective_gas();
        let patch = Patch::whole(cfg.grid.clone());
        let field = Field::from_primitives(patch.clone(), &gas, |_, _| Primitive { rho: 1.0, u: 0.5, v: 0.0, p: 0.7 });
        let mut prim = PrimField::zeros(&patch);
        let mut ledger = FlopLedger::default();
        compute_prims(Version::V5, &field, &mut prim, &gas, &mut ledger);
        fill_ghost_rows(&mut prim, patch.nxl, patch.nr());
        let mut flux = FluxField::zeros(&patch);
        compute_flux(Version::V5, FluxDir::X, &prim, &patch, EdgeFlags::of(&patch), &gas, &mut flux, None, &mut ledger);
        for c in 0..4 {
            for j in 0..patch.nr() {
                let a = flux.at(c, 10, j as isize);
                let b = flux.at(c, 11, j as isize);
                assert!((a - b).abs() < 1e-12, "component {c} row {j}");
            }
        }
    }

    #[test]
    fn euler_flux_has_no_viscous_terms() {
        let (field, mut prim, gas, patch) = setup(Regime::Euler);
        assert!(gas.is_inviscid());
        let mut ledger = FlopLedger::default();
        compute_prims(Version::V5, &field, &mut prim, &gas, &mut ledger);
        fill_ghost_rows(&mut prim, patch.nxl, patch.nr());
        let mut flux = FluxField::zeros(&patch);
        let mut src = Array2::zeros(patch.nxl + 2 * NG, patch.nr() + 2 * NG);
        compute_flux(
            Version::V5,
            FluxDir::R,
            &prim,
            &patch,
            EdgeFlags::of(&patch),
            &gas,
            &mut flux,
            Some(&mut src),
            &mut ledger,
        );
        // source reduces to p alone
        for i in 0..patch.nxl {
            for j in 0..patch.nr() {
                let p = prim.p.at(i + NG, j + NG);
                assert!((src.at(i + NG, j + NG) - p).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn v6_prims_and_flux_are_bitwise_v5() {
        for regime in [Regime::NavierStokes, Regime::Euler] {
            let (field, _, gas, patch) = setup(regime);
            let mut ledger = FlopLedger::default();
            let mut p5 = PrimField::zeros(&patch);
            let mut p6 = PrimField::zeros(&patch);
            compute_prims(Version::V5, &field, &mut p5, &gas, &mut ledger);
            compute_prims(Version::V6, &field, &mut p6, &gas, &mut ledger);
            for i in 0..patch.nxl {
                for j in 0..patch.nr() {
                    let (ii, jj) = (i + NG, j + NG);
                    for (a, b) in [(&p5.rho, &p6.rho), (&p5.u, &p6.u), (&p5.v, &p6.v), (&p5.p, &p6.p), (&p5.t, &p6.t)] {
                        assert_eq!(a.at(ii, jj).to_bits(), b.at(ii, jj).to_bits(), "{regime:?} prim at ({i},{j})");
                    }
                }
            }
            fill_ghost_rows(&mut p5, patch.nxl, patch.nr());
            let edges = EdgeFlags::of(&patch);
            for dir in [FluxDir::X, FluxDir::R] {
                let mut f5 = FluxField::zeros(&patch);
                let mut f6 = FluxField::zeros(&patch);
                let mut s5 = Array2::zeros(patch.nxl + 2 * NG, patch.nr() + 2 * NG);
                let mut s6 = Array2::zeros(patch.nxl + 2 * NG, patch.nr() + 2 * NG);
                compute_flux(Version::V5, dir, &p5, &patch, edges, &gas, &mut f5, Some(&mut s5), &mut ledger);
                compute_flux(Version::V6, dir, &p5, &patch, edges, &gas, &mut f6, Some(&mut s6), &mut ledger);
                for c in 0..4 {
                    for i in 0..patch.nxl {
                        for j in 0..patch.nr() {
                            assert_eq!(
                                f5.at(c, i as isize, j as isize).to_bits(),
                                f6.at(c, i as isize, j as isize).to_bits(),
                                "{regime:?} {dir:?} comp {c} at ({i},{j})"
                            );
                        }
                    }
                }
                if dir == FluxDir::R {
                    for i in 0..patch.nxl {
                        for j in 0..patch.nr() {
                            assert_eq!(s5.at(i + NG, j + NG).to_bits(), s6.at(i + NG, j + NG).to_bits());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn fused_sweep_is_bitwise_the_unfused_sequence() {
        for regime in [Regime::NavierStokes, Regime::Euler] {
            let (field, _, gas, patch) = setup(regime);
            let edges = EdgeFlags::of(&patch);
            let (nxl, nr) = (patch.nxl, patch.nr());

            // Reference: whole-plane V5 prims, plane-wide ghost fill, V5 flux.
            let mut ref_ledger = FlopLedger::default();
            let mut ref_prim = PrimField::zeros(&patch);
            compute_prims(Version::V5, &field, &mut ref_prim, &gas, &mut ref_ledger);
            crate::bc::mirror_prims_axis(&mut ref_prim);
            crate::bc::extrap_prims_top(&mut ref_prim, nr);
            for dir in [FluxDir::X, FluxDir::R] {
                let mut ref_flux = FluxField::zeros(&patch);
                let mut ref_src = Array2::zeros(nxl + 2 * NG, nr + 2 * NG);
                compute_flux(
                    Version::V5,
                    dir,
                    &ref_prim,
                    &patch,
                    edges,
                    &gas,
                    &mut ref_flux,
                    Some(&mut ref_src),
                    &mut ref_ledger,
                );

                for split_boundary in [false, true] {
                    let mut ledger = FlopLedger::default();
                    let mut prim = PrimField::zeros(&patch);
                    let mut flux = FluxField::zeros(&patch);
                    let mut src = Array2::zeros(nxl + 2 * NG, nr + 2 * NG);
                    if split_boundary {
                        // x-operator shape: boundary stations first, then the
                        // pipelined interior sweep.
                        fused_boundary_prims(&field, &mut prim, &gas, &[0, nxl - 1], &mut ledger);
                        fused_sweep(
                            dir,
                            &field,
                            &mut prim,
                            edges,
                            &gas,
                            &mut flux,
                            Some(&mut src),
                            1..nxl - 1,
                            0..nxl,
                            Some(nxl - 1),
                            &mut ledger,
                        );
                    } else {
                        fused_sweep(
                            dir,
                            &field,
                            &mut prim,
                            edges,
                            &gas,
                            &mut flux,
                            Some(&mut src),
                            0..nxl,
                            0..nxl,
                            None,
                            &mut ledger,
                        );
                    }
                    // Interior stations (incl. their radial ghosts) and all
                    // flux/source points must be bit-identical.
                    for i in 0..nxl {
                        let ii = i + NG;
                        for jj in 0..nr + 2 * NG {
                            assert_eq!(prim.p.at(ii, jj).to_bits(), ref_prim.p.at(ii, jj).to_bits());
                            assert_eq!(prim.v.at(ii, jj).to_bits(), ref_prim.v.at(ii, jj).to_bits());
                        }
                    }
                    for c in 0..4 {
                        for i in 0..nxl {
                            for j in 0..nr {
                                assert_eq!(
                                    flux.at(c, i as isize, j as isize).to_bits(),
                                    ref_flux.at(c, i as isize, j as isize).to_bits(),
                                    "{regime:?} {dir:?} split={split_boundary} comp {c} at ({i},{j})"
                                );
                            }
                        }
                    }
                    if dir == FluxDir::R {
                        for i in 0..nxl {
                            for j in 0..nr {
                                assert_eq!(src.at(i + NG, j + NG).to_bits(), ref_src.at(i + NG, j + NG).to_bits());
                            }
                        }
                    }
                    // Fused ledger accounting matches the unfused path.
                    assert_eq!(ledger.prims, (nxl * nr) as u64 * opcount::COST_PRIMS);
                    assert_eq!(
                        ledger.flux,
                        (nxl * nr) as u64
                            * if gas.is_inviscid() { opcount::COST_FLUX_INVISCID } else { opcount::COST_FLUX_VISCOUS }
                    );
                }
            }
        }
    }

    #[test]
    fn ledger_accumulates_flux_costs() {
        let (field, mut prim, gas, patch) = setup(Regime::NavierStokes);
        let mut ledger = FlopLedger::default();
        compute_prims(Version::V5, &field, &mut prim, &gas, &mut ledger);
        fill_ghost_rows(&mut prim, patch.nxl, patch.nr());
        let pts = (patch.nxl * patch.nr()) as u64;
        assert_eq!(ledger.prims, pts * opcount::COST_PRIMS);
        let mut flux = FluxField::zeros(&patch);
        compute_flux(Version::V5, FluxDir::X, &prim, &patch, EdgeFlags::of(&patch), &gas, &mut flux, None, &mut ledger);
        assert_eq!(ledger.flux, pts * opcount::COST_FLUX_VISCOUS);
        assert_eq!(ledger.source, 0);
    }
}
