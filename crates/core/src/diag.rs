//! Flow diagnostics: integrated invariants, boundary-flux conservation
//! budgets and derived planes (the axial momentum plane is what the paper's
//! Figure 1 contours).

use crate::field::Field;
use crate::physics::{self, Stresses};
use ns_numerics::{Array2, GasModel};

/// Integrated quantities of the axisymmetric flow (per unit `2 pi`).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Invariants {
    /// Total mass `integral rho r dr dx`.
    pub mass: f64,
    /// Total axial momentum.
    pub x_momentum: f64,
    /// Total radial momentum.
    pub r_momentum: f64,
    /// Total energy.
    pub energy: f64,
}

/// Compute the integrated invariants.
pub fn invariants(field: &Field) -> Invariants {
    Invariants {
        mass: field.integral(0),
        x_momentum: field.integral(1),
        r_momentum: field.integral(2),
        energy: field.integral(3),
    }
}

/// Predicted instantaneous rate of change `d/dt integral Q` of each
/// invariant from the boundary fluxes and the radial pressure source — the
/// other side of the conservation ledger.
///
/// The control volume matching [`Field::integral`]'s midpoint quadrature is
/// `[-dx/2, lx + dx/2] x [0, lr]` (the staggered radial grid puts the inner
/// surface exactly on the axis, where the weighted flux `G = r g` vanishes
/// identically). Surface fluxes are evaluated by linear extrapolation of
/// the two cells nearest each surface to the half-cell-offset surface
/// itself, consistent to O(h^2) with the quadrature.
///
/// Only inviscid fluxes are accounted: the neglected viscous surface work
/// and heat flux are O(mu) (mu ~ 2.5e-6 at the paper's Reynolds number),
/// far below the drift tolerances the verification suite asserts.
pub fn boundary_budget(field: &Field, gas: &GasModel) -> Invariants {
    let patch = &field.patch;
    let (dx, dr) = (patch.grid.dx, patch.grid.dr);
    let (nxl, nr) = (field.nxl(), field.nr());
    let s0 = Stresses::default();
    let fvec = |i: usize, j: usize| -> [f64; 4] {
        let w = field.primitive(i, j, gas);
        let e = gas.total_energy(w.rho, w.u, w.v, w.p);
        let f = physics::xflux(w.rho, w.u, w.v, w.p, e, &s0);
        let r = patch.r(j);
        [r * f[0], r * f[1], r * f[2], r * f[3]]
    };
    let gvec = |i: usize, j: usize| -> [f64; 4] {
        let w = field.primitive(i, j, gas);
        let e = gas.total_energy(w.rho, w.u, w.v, w.p);
        let g = physics::rflux(w.rho, w.u, w.v, w.p, e, &s0);
        let r = patch.r(j);
        [r * g[0], r * g[1], r * g[2], r * g[3]]
    };
    let mut rate = [0.0f64; 4];
    if patch.is_global_left() {
        for j in 0..nr {
            let f0 = fvec(0, j);
            let f1 = fvec(1, j);
            for c in 0..4 {
                rate[c] += (1.5 * f0[c] - 0.5 * f1[c]) * dr;
            }
        }
    }
    if patch.is_global_right() {
        for j in 0..nr {
            let f0 = fvec(nxl - 1, j);
            let f1 = fvec(nxl - 2, j);
            for c in 0..4 {
                rate[c] -= (1.5 * f0[c] - 0.5 * f1[c]) * dr;
            }
        }
    }
    for i in 0..nxl {
        let g0 = gvec(i, nr - 1);
        let g1 = gvec(i, nr - 2);
        for c in 0..4 {
            rate[c] -= (1.5 * g0[c] - 0.5 * g1[c]) * dx;
        }
    }
    // The radial momentum equation has the geometric source S_3 = p (plus
    // the O(mu) hoop stress, neglected with the other viscous terms).
    let mut sp = 0.0;
    for i in 0..nxl {
        for j in 0..nr {
            sp += field.primitive(i, j, gas).p;
        }
    }
    rate[2] += sp * dx * dr;
    Invariants { mass: rate[0], x_momentum: rate[1], r_momentum: rate[2], energy: rate[3] }
}

/// A running conservation ledger: invariant drift reconciled against the
/// time-integrated boundary budget.
///
/// The domain is open (inflow, outflow, entraining far field), so the raw
/// invariants are *not* constant — conservation here means every unit of
/// mass/momentum/energy the interior gains is accounted for by a boundary
/// flux or the geometric pressure source. The ledger integrates
/// [`boundary_budget`] in time (trapezoid rule, matching the scheme's
/// second-order time accuracy); the *unexplained residual* — drift minus
/// integrated budget — is the conservation defect the verification suite
/// bounds.
pub struct ConservationLedger {
    inv0: Invariants,
    prev_budget: Invariants,
    /// Time-integrated budget per component (trapezoid rule).
    acc: [f64; 4],
    steps: u64,
}

impl ConservationLedger {
    /// Open the ledger on a field's current state.
    pub fn open(field: &Field, gas: &GasModel) -> Self {
        Self { inv0: invariants(field), prev_budget: boundary_budget(field, gas), acc: [0.0; 4], steps: 0 }
    }

    /// Record one completed step of size `dt`.
    pub fn record(&mut self, field: &Field, gas: &GasModel, dt: f64) {
        let b = boundary_budget(field, gas);
        let prev =
            [self.prev_budget.mass, self.prev_budget.x_momentum, self.prev_budget.r_momentum, self.prev_budget.energy];
        let cur = [b.mass, b.x_momentum, b.r_momentum, b.energy];
        for c in 0..4 {
            self.acc[c] += 0.5 * dt * (prev[c] + cur[c]);
        }
        self.prev_budget = b;
        self.steps += 1;
    }

    /// Close the ledger: relative raw drift and unexplained residual per
    /// component. Radial momentum is scaled by the mass invariant (its own
    /// initial value is rounding-level zero), axial momentum by the larger
    /// of its own magnitude and the mass.
    pub fn close(&self, field: &Field) -> ClosedLedger {
        let now = invariants(field);
        let drift = [
            now.mass - self.inv0.mass,
            now.x_momentum - self.inv0.x_momentum,
            now.r_momentum - self.inv0.r_momentum,
            now.energy - self.inv0.energy,
        ];
        let scale = [self.inv0.mass, self.inv0.x_momentum.abs().max(self.inv0.mass), self.inv0.mass, self.inv0.energy];
        let mut drift_rel = [0.0; 4];
        let mut residual_rel = [0.0; 4];
        for c in 0..4 {
            drift_rel[c] = (drift[c] / scale[c]).abs();
            residual_rel[c] = ((drift[c] - self.acc[c]) / scale[c]).abs();
        }
        ClosedLedger { steps: self.steps, drift_rel, residual_rel }
    }
}

/// Closed-ledger outcome (component order: mass, x-mom, r-mom, energy).
#[derive(Clone, Copy, Debug)]
pub struct ClosedLedger {
    /// Steps recorded.
    pub steps: u64,
    /// Relative raw drift per component.
    pub drift_rel: [f64; 4],
    /// Relative unexplained residual per component.
    pub residual_rel: [f64; 4],
}

impl ClosedLedger {
    /// Convert for the telemetry [`ns_telemetry::RunSummary`].
    pub fn to_summary(self) -> ns_telemetry::ConservationSummary {
        ns_telemetry::ConservationSummary {
            steps: self.steps,
            drift_rel: self.drift_rel,
            residual_rel: self.residual_rel,
        }
    }
}

/// Axial momentum plane `rho u` (unweighted), the Figure 1 quantity.
pub fn axial_momentum(field: &Field, gas: &GasModel) -> Array2 {
    field.map_interior(gas, |w| w.rho * w.u)
}

/// Local Mach number plane.
pub fn mach(field: &Field, gas: &GasModel) -> Array2 {
    field.map_interior(gas, |w| w.mach(gas))
}

/// Pressure plane.
pub fn pressure(field: &Field, gas: &GasModel) -> Array2 {
    field.map_interior(gas, |w| w.p)
}

/// All stability watchdogs, gathered in one pass over the interior.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Watchdogs {
    /// Maximum Mach number.
    pub max_mach: f64,
    /// Maximum convective+acoustic wave speed `max(|u| + c, |v| + c)` —
    /// the CFL-limiting signal speed.
    pub max_wave_speed: f64,
    /// Minimum density (positivity watchdog).
    pub min_rho: f64,
    /// Minimum pressure (positivity watchdog).
    pub min_p: f64,
    /// False when any interior primitive is NaN/inf. The extrema above
    /// cannot signal this themselves: `f64::max`/`min` silently drop NaNs.
    pub finite: bool,
}

/// Compute every watchdog in a single sweep. The health monitor samples
/// this each cadence step, so the point of fusing the passes is to pay for
/// one `primitive()` decode per cell instead of three.
pub fn watchdogs(field: &Field, gas: &GasModel) -> Watchdogs {
    let mut max_mach = 0.0f64;
    let mut wave = 0.0f64;
    let mut rho = f64::INFINITY;
    let mut p = f64::INFINITY;
    let mut finite = true;
    for i in 0..field.nxl() {
        for j in 0..field.nr() {
            let w = field.primitive(i, j, gas);
            let c = w.sound_speed(gas);
            max_mach = max_mach.max(w.mach(gas).abs());
            wave = wave.max(w.u.abs() + c).max(w.v.abs() + c);
            rho = rho.min(w.rho);
            p = p.min(w.p);
            finite = finite && w.rho.is_finite() && w.u.is_finite() && w.v.is_finite() && w.p.is_finite();
        }
    }
    Watchdogs { max_mach, max_wave_speed: wave, min_rho: rho, min_p: p, finite }
}

/// Maximum Mach number over the interior (stability watchdog).
pub fn max_mach(field: &Field, gas: &GasModel) -> f64 {
    watchdogs(field, gas).max_mach
}

/// Maximum convective+acoustic wave speed over the interior,
/// `max(|u| + c, |v| + c)` — the CFL-limiting signal speed.
pub fn max_wave_speed(field: &Field, gas: &GasModel) -> f64 {
    watchdogs(field, gas).max_wave_speed
}

/// Minimum density and pressure (positivity watchdog).
pub fn min_rho_p(field: &Field, gas: &GasModel) -> (f64, f64) {
    let w = watchdogs(field, gas);
    (w.min_rho, w.min_p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::Patch;
    use ns_numerics::gas::Primitive;
    use ns_numerics::Grid;

    #[test]
    fn invariants_of_quiescent_gas() {
        let gas = GasModel::air(1.2e6, 1.5);
        let grid = Grid::small();
        let f = Field::from_primitives(Patch::whole(grid.clone()), &gas, |_, _| Primitive {
            rho: 2.0,
            u: 0.0,
            v: 0.0,
            p: 0.7,
        });
        let inv = invariants(&f);
        assert!(inv.mass > 0.0);
        assert!(inv.x_momentum.abs() < 1e-12);
        assert!(inv.r_momentum.abs() < 1e-12);
        assert!(inv.energy > 0.0);
        // mass = 2 * sum r_j * nx * dx * dr
        let expected = 2.0 * (0..grid.nr).map(|j| grid.r(j)).sum::<f64>() * grid.nx as f64 * grid.dx * grid.dr;
        assert!((inv.mass - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn boundary_budget_of_uniform_flow_is_zero() {
        // Uniform axial flow: inflow and outflow fluxes cancel column for
        // column, the top surface carries no convective flux (v = 0) and its
        // pressure flux r*p integrates against the source integral p exactly
        // (both are linear in r, which the half-cell extrapolation treats
        // exactly). Every budget component must vanish to rounding.
        let gas = GasModel::air(1.2e6, 1.5);
        let f = Field::from_primitives(Patch::whole(Grid::small()), &gas, |_, _| Primitive {
            rho: 1.0,
            u: 0.4,
            v: 0.0,
            p: gas.pressure(1.0, 1.0),
        });
        let b = boundary_budget(&f, &gas);
        for (name, v) in
            [("mass", b.mass), ("x_momentum", b.x_momentum), ("r_momentum", b.r_momentum), ("energy", b.energy)]
        {
            assert!(v.abs() < 1e-10, "{name} budget of uniform flow = {v}");
        }
    }

    #[test]
    fn momentum_plane_and_watchdogs() {
        let gas = GasModel::air(1.2e6, 1.5);
        let f = Field::from_primitives(Patch::whole(Grid::small()), &gas, |_, r| Primitive {
            rho: 1.0,
            u: if r < 1.0 { 1.5 } else { 0.0 },
            v: 0.0,
            p: gas.pressure(1.0, 1.0),
        });
        let m = axial_momentum(&f, &gas);
        assert!((m[(0, 0)] - 1.5).abs() < 1e-12);
        assert!(m[(0, f.nr() - 1)].abs() < 1e-12);
        assert!((max_mach(&f, &gas) - 1.5).abs() < 1e-9);
        let (rho, p) = min_rho_p(&f, &gas);
        assert!(rho > 0.9 && p > 0.0);
    }

    #[test]
    fn fused_watchdogs_match_individual_passes() {
        let gas = GasModel::air(1.2e6, 1.5);
        let f = Field::from_primitives(Patch::whole(Grid::small()), &gas, |x, r| Primitive {
            rho: 1.0 + 0.1 * (x + r),
            u: if r < 1.0 { 1.5 } else { 0.1 * x },
            v: 0.05 * r,
            p: gas.pressure(1.0, 1.0) * (1.0 + 0.05 * x),
        });
        let w = watchdogs(&f, &gas);
        assert!(w.finite);
        assert_eq!(w.max_mach, mach(&f, &gas).max_abs());
        assert!(w.max_wave_speed > 0.0);
        assert!(w.min_rho > 0.0 && w.min_p > 0.0);
        assert_eq!((w.min_rho, w.min_p), min_rho_p(&f, &gas));
    }

    #[test]
    fn watchdogs_flag_non_finite_values() {
        let gas = GasModel::air(1.2e6, 1.5);
        let mut f = Field::from_primitives(Patch::whole(Grid::small()), &gas, |_, _| Primitive {
            rho: 1.0,
            u: 0.5,
            v: 0.0,
            p: gas.pressure(1.0, 1.0),
        });
        assert!(watchdogs(&f, &gas).finite);
        f.set(1, 2, 2, f64::NAN);
        assert!(!watchdogs(&f, &gas).finite);
    }
}
