//! Flow diagnostics: integrated invariants and derived planes (the axial
//! momentum plane is what the paper's Figure 1 contours).

use crate::field::Field;
use ns_numerics::{Array2, GasModel};

/// Integrated quantities of the axisymmetric flow (per unit `2 pi`).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Invariants {
    /// Total mass `integral rho r dr dx`.
    pub mass: f64,
    /// Total axial momentum.
    pub x_momentum: f64,
    /// Total radial momentum.
    pub r_momentum: f64,
    /// Total energy.
    pub energy: f64,
}

/// Compute the integrated invariants.
pub fn invariants(field: &Field) -> Invariants {
    Invariants {
        mass: field.integral(0),
        x_momentum: field.integral(1),
        r_momentum: field.integral(2),
        energy: field.integral(3),
    }
}

/// Axial momentum plane `rho u` (unweighted), the Figure 1 quantity.
pub fn axial_momentum(field: &Field, gas: &GasModel) -> Array2 {
    field.map_interior(gas, |w| w.rho * w.u)
}

/// Local Mach number plane.
pub fn mach(field: &Field, gas: &GasModel) -> Array2 {
    field.map_interior(gas, |w| w.mach(gas))
}

/// Pressure plane.
pub fn pressure(field: &Field, gas: &GasModel) -> Array2 {
    field.map_interior(gas, |w| w.p)
}

/// Maximum Mach number over the interior (stability watchdog).
pub fn max_mach(field: &Field, gas: &GasModel) -> f64 {
    mach(field, gas).max_abs()
}

/// Maximum convective+acoustic wave speed over the interior,
/// `max(|u| + c, |v| + c)` — the CFL-limiting signal speed.
pub fn max_wave_speed(field: &Field, gas: &GasModel) -> f64 {
    let mut m = 0.0f64;
    for i in 0..field.nxl() {
        for j in 0..field.nr() {
            let w = field.primitive(i, j, gas);
            let c = w.sound_speed(gas);
            m = m.max(w.u.abs() + c).max(w.v.abs() + c);
        }
    }
    m
}

/// Minimum density and pressure (positivity watchdog).
pub fn min_rho_p(field: &Field, gas: &GasModel) -> (f64, f64) {
    let mut rho = f64::INFINITY;
    let mut p = f64::INFINITY;
    for i in 0..field.nxl() {
        for j in 0..field.nr() {
            let w = field.primitive(i, j, gas);
            rho = rho.min(w.rho);
            p = p.min(w.p);
        }
    }
    (rho, p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::Patch;
    use ns_numerics::gas::Primitive;
    use ns_numerics::Grid;

    #[test]
    fn invariants_of_quiescent_gas() {
        let gas = GasModel::air(1.2e6, 1.5);
        let grid = Grid::small();
        let f = Field::from_primitives(Patch::whole(grid.clone()), &gas, |_, _| Primitive {
            rho: 2.0,
            u: 0.0,
            v: 0.0,
            p: 0.7,
        });
        let inv = invariants(&f);
        assert!(inv.mass > 0.0);
        assert!(inv.x_momentum.abs() < 1e-12);
        assert!(inv.r_momentum.abs() < 1e-12);
        assert!(inv.energy > 0.0);
        // mass = 2 * sum r_j * nx * dx * dr
        let expected = 2.0 * (0..grid.nr).map(|j| grid.r(j)).sum::<f64>() * grid.nx as f64 * grid.dx * grid.dr;
        assert!((inv.mass - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn momentum_plane_and_watchdogs() {
        let gas = GasModel::air(1.2e6, 1.5);
        let f = Field::from_primitives(Patch::whole(Grid::small()), &gas, |_, r| Primitive {
            rho: 1.0,
            u: if r < 1.0 { 1.5 } else { 0.0 },
            v: 0.0,
            p: gas.pressure(1.0, 1.0),
        });
        let m = axial_momentum(&f, &gas);
        assert!((m[(0, 0)] - 1.5).abs() < 1e-12);
        assert!(m[(0, f.nr() - 1)].abs() < 1e-12);
        assert!((max_mach(&f, &gas) - 1.5).abs() < 1e-9);
        let (rho, p) = min_rho_p(&f, &gas);
        assert!(rho > 0.9 && p > 0.0);
    }
}
