//! Flow diagnostics: integrated invariants and derived planes (the axial
//! momentum plane is what the paper's Figure 1 contours).

use crate::field::Field;
use ns_numerics::{Array2, GasModel};

/// Integrated quantities of the axisymmetric flow (per unit `2 pi`).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Invariants {
    /// Total mass `integral rho r dr dx`.
    pub mass: f64,
    /// Total axial momentum.
    pub x_momentum: f64,
    /// Total radial momentum.
    pub r_momentum: f64,
    /// Total energy.
    pub energy: f64,
}

/// Compute the integrated invariants.
pub fn invariants(field: &Field) -> Invariants {
    Invariants {
        mass: field.integral(0),
        x_momentum: field.integral(1),
        r_momentum: field.integral(2),
        energy: field.integral(3),
    }
}

/// Axial momentum plane `rho u` (unweighted), the Figure 1 quantity.
pub fn axial_momentum(field: &Field, gas: &GasModel) -> Array2 {
    field.map_interior(gas, |w| w.rho * w.u)
}

/// Local Mach number plane.
pub fn mach(field: &Field, gas: &GasModel) -> Array2 {
    field.map_interior(gas, |w| w.mach(gas))
}

/// Pressure plane.
pub fn pressure(field: &Field, gas: &GasModel) -> Array2 {
    field.map_interior(gas, |w| w.p)
}

/// All stability watchdogs, gathered in one pass over the interior.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Watchdogs {
    /// Maximum Mach number.
    pub max_mach: f64,
    /// Maximum convective+acoustic wave speed `max(|u| + c, |v| + c)` —
    /// the CFL-limiting signal speed.
    pub max_wave_speed: f64,
    /// Minimum density (positivity watchdog).
    pub min_rho: f64,
    /// Minimum pressure (positivity watchdog).
    pub min_p: f64,
    /// False when any interior primitive is NaN/inf. The extrema above
    /// cannot signal this themselves: `f64::max`/`min` silently drop NaNs.
    pub finite: bool,
}

/// Compute every watchdog in a single sweep. The health monitor samples
/// this each cadence step, so the point of fusing the passes is to pay for
/// one `primitive()` decode per cell instead of three.
pub fn watchdogs(field: &Field, gas: &GasModel) -> Watchdogs {
    let mut max_mach = 0.0f64;
    let mut wave = 0.0f64;
    let mut rho = f64::INFINITY;
    let mut p = f64::INFINITY;
    let mut finite = true;
    for i in 0..field.nxl() {
        for j in 0..field.nr() {
            let w = field.primitive(i, j, gas);
            let c = w.sound_speed(gas);
            max_mach = max_mach.max(w.mach(gas).abs());
            wave = wave.max(w.u.abs() + c).max(w.v.abs() + c);
            rho = rho.min(w.rho);
            p = p.min(w.p);
            finite = finite && w.rho.is_finite() && w.u.is_finite() && w.v.is_finite() && w.p.is_finite();
        }
    }
    Watchdogs { max_mach, max_wave_speed: wave, min_rho: rho, min_p: p, finite }
}

/// Maximum Mach number over the interior (stability watchdog).
pub fn max_mach(field: &Field, gas: &GasModel) -> f64 {
    watchdogs(field, gas).max_mach
}

/// Maximum convective+acoustic wave speed over the interior,
/// `max(|u| + c, |v| + c)` — the CFL-limiting signal speed.
pub fn max_wave_speed(field: &Field, gas: &GasModel) -> f64 {
    watchdogs(field, gas).max_wave_speed
}

/// Minimum density and pressure (positivity watchdog).
pub fn min_rho_p(field: &Field, gas: &GasModel) -> (f64, f64) {
    let w = watchdogs(field, gas);
    (w.min_rho, w.min_p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::Patch;
    use ns_numerics::gas::Primitive;
    use ns_numerics::Grid;

    #[test]
    fn invariants_of_quiescent_gas() {
        let gas = GasModel::air(1.2e6, 1.5);
        let grid = Grid::small();
        let f = Field::from_primitives(Patch::whole(grid.clone()), &gas, |_, _| Primitive {
            rho: 2.0,
            u: 0.0,
            v: 0.0,
            p: 0.7,
        });
        let inv = invariants(&f);
        assert!(inv.mass > 0.0);
        assert!(inv.x_momentum.abs() < 1e-12);
        assert!(inv.r_momentum.abs() < 1e-12);
        assert!(inv.energy > 0.0);
        // mass = 2 * sum r_j * nx * dx * dr
        let expected = 2.0 * (0..grid.nr).map(|j| grid.r(j)).sum::<f64>() * grid.nx as f64 * grid.dx * grid.dr;
        assert!((inv.mass - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn momentum_plane_and_watchdogs() {
        let gas = GasModel::air(1.2e6, 1.5);
        let f = Field::from_primitives(Patch::whole(Grid::small()), &gas, |_, r| Primitive {
            rho: 1.0,
            u: if r < 1.0 { 1.5 } else { 0.0 },
            v: 0.0,
            p: gas.pressure(1.0, 1.0),
        });
        let m = axial_momentum(&f, &gas);
        assert!((m[(0, 0)] - 1.5).abs() < 1e-12);
        assert!(m[(0, f.nr() - 1)].abs() < 1e-12);
        assert!((max_mach(&f, &gas) - 1.5).abs() < 1e-9);
        let (rho, p) = min_rho_p(&f, &gas);
        assert!(rho > 0.9 && p > 0.0);
    }

    #[test]
    fn fused_watchdogs_match_individual_passes() {
        let gas = GasModel::air(1.2e6, 1.5);
        let f = Field::from_primitives(Patch::whole(Grid::small()), &gas, |x, r| Primitive {
            rho: 1.0 + 0.1 * (x + r),
            u: if r < 1.0 { 1.5 } else { 0.1 * x },
            v: 0.05 * r,
            p: gas.pressure(1.0, 1.0) * (1.0 + 0.05 * x),
        });
        let w = watchdogs(&f, &gas);
        assert!(w.finite);
        assert_eq!(w.max_mach, mach(&f, &gas).max_abs());
        assert!(w.max_wave_speed > 0.0);
        assert!(w.min_rho > 0.0 && w.min_p > 0.0);
        assert_eq!((w.min_rho, w.min_p), min_rho_p(&f, &gas));
    }

    #[test]
    fn watchdogs_flag_non_finite_values() {
        let gas = GasModel::air(1.2e6, 1.5);
        let mut f = Field::from_primitives(Patch::whole(Grid::small()), &gas, |_, _| Primitive {
            rho: 1.0,
            u: 0.5,
            v: 0.0,
            p: gas.pressure(1.0, 1.0),
        });
        assert!(watchdogs(&f, &gas).finite);
        f.set(1, 2, 2, f64::NAN);
        assert!(!watchdogs(&f, &gas).finite);
    }
}
