//! Solver configuration: flow regime, optimization version, jet parameters.

use ns_numerics::{profile::ShearLayer, GasModel, Grid};
use serde::{Deserialize, Serialize};

/// Which set of governing equations to solve.
///
/// The paper runs the same application twice: the full compressible
/// Navier-Stokes equations ("N-S") and the Euler equations obtained by
/// zeroing the shear stresses and heat fluxes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Regime {
    /// Full viscous compressible Navier-Stokes.
    NavierStokes,
    /// Inviscid Euler (`tau_ij = kappa = 0`).
    Euler,
}

impl Regime {
    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Regime::NavierStokes => "Navier-Stokes",
            Regime::Euler => "Euler",
        }
    }
}

/// Single-processor optimization versions from the paper's Section 6 /
/// Figure 2. Each version *cumulatively* contains the previous ones, in the
/// order the paper applied them (which, as the paper notes, differs from the
/// order they were presented):
///
/// * `V1` — original code: axial-innermost (strided) loops, exponentiation
///   by `powf`, divisions in the inner loops.
/// * `V2` — strength reduction: exponentiations replaced by multiplications.
/// * `V3` — loop interchange: stride-1 (radial-innermost) array access.
///   The paper credits this with ~50% of the total gain.
/// * `V4` — divisions replaced by reciprocal multiplications
///   (the paper reduced 5.5e9 divisions to 2.0e9).
/// * `V5` — register/memory-layout optimization: the analogue of collapsing
///   multiple COMMON blocks is a fused single-pass kernel that keeps
///   per-point temporaries in registers instead of materializing
///   intermediate stress arrays.
/// * `V6` — beyond the paper's ladder: prims+flux loop fusion. The primitive
///   recovery and the flux evaluation are performed in one sweep over each
///   row-major plane (each radial line is consumed for fluxes while still
///   hot in cache, halving the memory traffic of the V5 prims-then-flux
///   sequence), with the inner loops iterated in fixed-width lanes over row
///   slices so LLVM auto-vectorizes them. The per-point arithmetic is
///   bit-identical to V5.
/// * `V7` — structure-of-arrays compute path with explicit SIMD lanes and
///   cache-blocked sweeps (see `crate::soa`). The fused sweep reads the AoS
///   conservative rows in place (lane loads need no padding) and recovers
///   primitives into a lane-padded SoA arena of per-station component
///   blocks, so every inner loop is a whole number of
///   [`crate::soa::LANES`]-wide `LaneVec` blocks — no scalar
///   remainders, no per-point branches (direction/viscosity/source are const
///   generics) — and the radial axis is tiled ([`SolverConfig::tile_r`]) so
///   the recover→ghost-fill→flux pipeline of a station stays in L1.
///   Conversions between the AoS `Field` and the SoA arena happen only at
///   sweep boundaries (adjacent to halo exchange / checkpoint), so comm,
///   recovery and checkpoint layers are untouched. The per-point arithmetic
///   is bit-identical to V6 (and hence V5): lanes are independent grid
///   points and no reduction is ever reassociated across lanes.
///
/// The *communication* variants with the same numbers (overlap,
/// burst-splitting) are a separate axis and live in `ns-runtime`
/// (`CommVersion`) / `ns-archsim` (`CommMode`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Version {
    /// Original code.
    V1,
    /// + strength reduction.
    V2,
    /// + loop interchange (stride-1).
    V3,
    /// + division -> reciprocal multiply.
    V4,
    /// + fused kernels / register reuse.
    V5,
    /// + prims/flux single-sweep fusion with lane-chunked inner loops.
    V6,
    /// + SoA layout, explicit `LaneVec` lanes, cache-blocked radial tiles.
    V7,
}

impl Version {
    /// All single-processor versions in ladder order (V1–V5 are the paper's
    /// Figure 2 rungs; V6/V7 are this repo's fused and SoA extensions).
    pub const ALL: [Version; 7] =
        [Version::V1, Version::V2, Version::V3, Version::V4, Version::V5, Version::V6, Version::V7];

    /// 1-based index as used on the Figure 2 axis.
    pub fn index(self) -> usize {
        match self {
            Version::V1 => 1,
            Version::V2 => 2,
            Version::V3 => 3,
            Version::V4 => 4,
            Version::V5 => 5,
            Version::V6 => 6,
            Version::V7 => 7,
        }
    }
}

/// Default V7 radial tile width (grid points), chosen from measurement.
/// Every tile multiplies the station pipeline's fixed per-station cost
/// (row slicing, ghost fills, stencil bookkeeping) by the tile count, so
/// blocking only pays once a tile's live rows (4 conservative + 3x5
/// stencil primitives + 4 flux + source ≈ 24 rows of `tile_r` points)
/// outgrow the cache: on the committed grids (nr <= 100) a single tile is
/// fastest, and on a tall nr = 8192 probe the sweep bottoms out near
/// `tile_r` = 2048 (≈ 380 KiB live, inside L2; 1.3x over the untiled V6
/// sweep, vs 3.4x *slower* at `tile_r` = 64). 2048 keeps paper-scale grids
/// single-tile while bounding the window for very tall ones. Any
/// `tile_r >= 1` is valid and bitwise-equivalent (tiles are independent
/// grid points; boundary columns are recomputed, not carried).
pub const DEFAULT_TILE_R: usize = 2048;

/// Spatial order of the MacCormack scheme.
///
/// The paper uses the fourth-order Gottlieb–Turkel "2-4" variant; the
/// classic second-order "2-2" MacCormack scheme is provided as the accuracy
/// baseline the Gottlieb–Turkel paper itself improves upon (used by the
/// ablation study; see `EXPERIMENTS.md`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemeOrder {
    /// Gottlieb–Turkel 2-4: one-sided 3-point differences, 4th order when
    /// alternated.
    TwoFour,
    /// Classic MacCormack 2-2: one-sided 2-point differences, 2nd order.
    TwoTwo,
}

/// Inflow excitation parameters (paper Section 3).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Excitation {
    /// Excitation level `epsilon`.
    pub level: f64,
    /// Strouhal number based on jet diameter and centerline velocity.
    pub strouhal: f64,
    /// Radial width of the modal shape (fraction of jet radius).
    pub width: f64,
    /// Enabled flag; performance experiments run with excitation on, as the
    /// paper does, but its cost is negligible (inflow column only).
    pub enabled: bool,
}

impl Excitation {
    /// The paper's forcing: `epsilon = 1.5e-2`, `St = 1/8`, localized in the
    /// shear layer.
    pub fn paper() -> Self {
        Self { level: 1.5e-2, strouhal: 0.125, width: 0.25, enabled: true }
    }

    /// No forcing.
    pub fn off() -> Self {
        Self { level: 0.0, strouhal: 0.125, width: 0.25, enabled: false }
    }

    /// Angular frequency `omega = 2 pi St U_c / D` (jet diameter `D = 2`).
    pub fn omega(&self, u_c: f64) -> f64 {
        std::f64::consts::PI * self.strouhal * u_c
    }
}

/// Complete solver configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SolverConfig {
    /// Grid.
    pub grid: Grid,
    /// Gas model (use [`GasModel::inviscid`] of this for Euler; the solver
    /// does that internally based on `regime`).
    pub gas: GasModel,
    /// Governing equations.
    pub regime: Regime,
    /// Optimization version for the hot kernels.
    pub version: Version,
    /// Jet mean-flow profile.
    pub jet: ShearLayer,
    /// Inflow excitation.
    pub excitation: Excitation,
    /// CFL number used to pick the time step.
    pub cfl: f64,
    /// Explicit time-step override (bypasses the CFL estimate when `Some`).
    pub dt_override: Option<f64>,
    /// Fourth-difference artificial dissipation coefficient (0 disables; the
    /// paper's scheme has none, but long excited-jet runs need a little).
    pub dissipation: f64,
    /// Spatial order of the scheme (the paper's 2-4 by default).
    pub scheme: SchemeOrder,
    /// Re-evaluate the time step every step from the instantaneous maximum
    /// wave speed (a global reduction in the distributed solver). The paper
    /// runs with a fixed step; this is the conventional production upgrade.
    pub adaptive_dt: bool,
    /// Manufactured-solution verification mode. When `Some`, the solver is
    /// initialized at the analytic state, the inflow/outflow/far-field
    /// boundaries carry the manufactured data instead of the jet physics,
    /// and the analytic forcing from [`crate::mms`] is injected into both
    /// split operators. Production runs use `None`.
    pub mms: Option<crate::mms::MmsSpec>,
    /// Radial tile width of the V7 cache-blocked sweep (grid points). Only
    /// consulted when `version == V7`; any value `>= 1` yields bitwise
    /// identical results (property-tested), so this is purely a performance
    /// knob. See [`DEFAULT_TILE_R`] for the measured default.
    pub tile_r: usize,
}

impl SolverConfig {
    /// The paper's production configuration on a given grid.
    pub fn paper(grid: Grid, regime: Regime) -> Self {
        let jet = ShearLayer::paper();
        let gas = GasModel::air(1.2e6, jet.u_c);
        Self {
            grid,
            gas,
            regime,
            version: Version::V5,
            jet,
            excitation: Excitation::paper(),
            cfl: 0.5,
            dt_override: None,
            dissipation: 0.0,
            scheme: SchemeOrder::TwoFour,
            adaptive_dt: false,
            mms: None,
            tile_r: DEFAULT_TILE_R,
        }
    }

    /// Effective gas model for the configured regime.
    pub fn effective_gas(&self) -> GasModel {
        match self.regime {
            Regime::NavierStokes => self.gas,
            Regime::Euler => self.gas.inviscid(),
        }
    }

    /// Time step from the CFL condition with the inviscid wave-speed bound
    /// `max(|u|) + c` estimated from the inflow profile.
    pub fn time_step(&self) -> f64 {
        if let Some(dt) = self.dt_override {
            return dt;
        }
        // Fastest signal: centerline velocity plus centerline sound speed
        // (c_c = 1 in our nondimensionalization), with modest headroom for
        // perturbations.
        let wave = self.jet.u_c + 1.0;
        let h = self.grid.dx.min(self.grid.dr);
        self.cfl * h / (1.2 * wave)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_sane() {
        let cfg = SolverConfig::paper(Grid::paper(), Regime::NavierStokes);
        assert_eq!(cfg.version, Version::V5);
        let dt = cfg.time_step();
        assert!(dt > 0.0 && dt < cfg.grid.dr, "dt = {dt}");
    }

    #[test]
    fn euler_gas_is_inviscid() {
        let cfg = SolverConfig::paper(Grid::small(), Regime::Euler);
        assert!(cfg.effective_gas().is_inviscid());
        assert!(!SolverConfig::paper(Grid::small(), Regime::NavierStokes).effective_gas().is_inviscid());
    }

    #[test]
    fn dt_override_wins() {
        let mut cfg = SolverConfig::paper(Grid::small(), Regime::Euler);
        cfg.dt_override = Some(1e-4);
        assert_eq!(cfg.time_step(), 1e-4);
    }

    #[test]
    fn version_ordering_and_indexing() {
        assert!(Version::V1 < Version::V5);
        assert!(Version::V5 < Version::V6);
        assert!(Version::V6 < Version::V7);
        assert_eq!(Version::ALL.len(), 7);
        for (k, v) in Version::ALL.iter().enumerate() {
            assert_eq!(v.index(), k + 1);
        }
    }

    #[test]
    fn default_tile_is_sane() {
        let cfg = SolverConfig::paper(Grid::paper(), Regime::NavierStokes);
        assert_eq!(cfg.tile_r, DEFAULT_TILE_R);
        // the committed grids (nr <= 100) must run as a single tile — the
        // blocking default only kicks in on much taller grids
        assert!(DEFAULT_TILE_R >= Grid::paper().nr);
    }

    #[test]
    fn excitation_frequency() {
        let e = Excitation::paper();
        // omega = 2 pi * (1/8) * 1.5 / 2
        let omega = e.omega(1.5);
        assert!((omega - std::f64::consts::PI * 0.125 * 1.5).abs() < 1e-12);
    }
}
