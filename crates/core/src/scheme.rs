//! The Gottlieb–Turkel "2-4" MacCormack operators.
//!
//! The scheme (paper Section 3) splits `L Q = S` into one-dimensional
//! operators and applies a predictor/corrector pair with one-sided
//! differences in each:
//!
//! * `L1`: forward difference in the predictor, backward in the corrector;
//! * `L2`: the symmetric variant (backward predictor, forward corrector).
//!
//! Fourth-order spatial accuracy is obtained by alternating,
//! `Q^{n+1} = L1x L1r Q^n`, `Q^{n+2} = L2r L2x Q^{n+1}`.
//!
//! Halo traffic is abstracted behind [`XHalo`] so the identical numerics
//! run serially (ghosts from boundary conditions only) and in parallel
//! (ghosts from neighbor exchange), which is what makes the
//! serial-vs-parallel equivalence tests exact. Under the paper's 1-D axial
//! decomposition only the axial operator communicates; under the 2-D pencil
//! decomposition the radial hooks ([`XHalo::exchange_prims_r`],
//! [`XHalo::exchange_flux_r`]) fill ghost rows at internal radial edges,
//! and every boundary-condition fill is gated on the patch actually owning
//! that global boundary.

use crate::bc;
use crate::config::{SchemeOrder, SolverConfig};
use crate::field::{Field, FluxField, PrimField, Workspace, NG};
use crate::kernels::{self, EdgeFlags, FluxDir};
use crate::mms::MmsSources;
use crate::opcount::{self, FlopLedger};
use ns_numerics::GasModel;

/// Which symmetric variant of the predictor/corrector pair to apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Forward predictor, backward corrector.
    L1,
    /// Backward predictor, forward corrector.
    L2,
}

/// Halo-exchange hooks for the axial operator.
///
/// The methods are called in the exact order the paper's message protocol
/// prescribes: primitive columns before each flux evaluation stage (the
/// grouped "velocity and temperature" send), then the two-column flux
/// packet after each flux evaluation.
pub trait XHalo {
    /// Fill the axial ghost columns of the primitive planes from the
    /// neighbouring subdomains (no-op at owned global boundaries).
    fn exchange_prims(&mut self, prim: &mut PrimField);
    /// Fill the two axial ghost flux columns on each internal edge.
    fn exchange_flux(&mut self, flux: &mut FluxField);
    /// Global max-reduction (identity for the serial solver); used by
    /// adaptive time stepping so every rank agrees on the step size.
    fn reduce_max(&mut self, x: f64) -> f64 {
        x
    }
    /// Split-phase primitive exchange, part 1: post the sends (and, for a
    /// non-overlapping transport, complete the receives too). No-op
    /// serially.
    fn post_prims(&mut self, prim: &mut PrimField) {
        let _ = prim;
    }
    /// Split-phase primitive exchange, part 2: complete any receives posted
    /// by [`XHalo::post_prims`]. No-op serially and for non-overlapping
    /// transports.
    fn finish_prims(&mut self, prim: &mut PrimField) {
        let _ = prim;
    }
    /// Fill the ghost *rows* of the primitive planes from the radial
    /// neighbours (2-D pencil decomposition). The packed rows span the full
    /// padded width, so the edge-adjacent corner strips ride along. No-op
    /// serially and for axial-only decompositions.
    fn exchange_prims_r(&mut self, prim: &mut PrimField) {
        let _ = prim;
    }
    /// Fill the two ghost flux rows on each internal radial edge (the 2-4
    /// stencil reads `j±2`). No-op serially and for axial-only
    /// decompositions.
    fn exchange_flux_r(&mut self, flux: &mut FluxField) {
        let _ = flux;
    }
}

/// Serial stand-in: a single patch owns both global boundaries, so there is
/// nothing to exchange — ghost fluxes come from cubic extrapolation inside
/// the operator and derivative stencils are one-sided at the edges.
pub struct NoHalo;

impl XHalo for NoHalo {
    fn exchange_prims(&mut self, _prim: &mut PrimField) {}
    fn exchange_flux(&mut self, _flux: &mut FluxField) {}
}

/// Apply the axial operator (`Q_t + F_x = 0`) over one time step.
///
/// `t` is the physical time at the start of the step; the inflow Dirichlet
/// data for the predictor state and the new state are evaluated at `t + dt`.
#[allow(clippy::too_many_arguments)]
pub fn x_operator(
    variant: Variant,
    field: &mut Field,
    ws: &mut Workspace,
    cfg: &SolverConfig,
    gas: &GasModel,
    halo: &mut dyn XHalo,
    t: f64,
    dt: f64,
    ledger: &mut FlopLedger,
) {
    let patch = field.patch.clone();
    let edges = EdgeFlags::of(&patch);
    let (nxl, nr) = (patch.nxl, patch.nr());
    let lam = dt / (6.0 * patch.grid.dx);
    let viscous = !gas.is_inviscid();

    // Phase attribution uses the labels of `crate::workload`, so measured
    // breakdowns line up with the simulator's. The timer is paused around
    // every halo call: exchange time belongs to the runtime's communication
    // accounting, not to a compute phase.

    // V6+ fuses primitive recovery, ghost fill and flux evaluation into one
    // sweep per stage; its phase labels ("x:fused", "x:fused2") replace the
    // separate prims/flux pairs in the telemetry vocabulary. V7 shares the
    // fused shape, running each sweep over the SoA tiled path.
    let fused = cfg.version >= crate::config::Version::V6;
    let (flo, fhi) = (usize::from(!edges.left), nxl - usize::from(!edges.right));

    // --- stage 1: fluxes of Q^n -------------------------------------------
    // Split-phase exchange: post the boundary columns, compute the columns
    // whose stencils are fully local, complete the receives, finish the
    // edge columns. With an overlapping transport this is exactly the
    // paper's Version 6; with a plain transport (or serially) it degenerates
    // to exchange-then-compute (Version 5) with identical arithmetic.
    if fused {
        ws.timers.start("x:fused");
        kernels::fused_boundary_prims(field, &mut ws.prim, gas, &[0, nxl - 1], ledger);
        ws.timers.pause();
        halo.post_prims(&mut ws.prim);
        ws.timers.start("x:fused");
        // Swept stations that later AoS consumers read back (V7 only): the
        // post-halo edge-column flux passes stencil stations `flo`/`fhi - 1`,
        // and the characteristic-outflow derivative reaches nxl-2 / nxl-3.
        let mut x1_exports = [0usize; 4];
        let mut n_exp = 0;
        if !edges.left {
            x1_exports[n_exp] = flo;
            n_exp += 1;
        }
        if !edges.right {
            x1_exports[n_exp] = fhi - 1;
            n_exp += 1;
        }
        if edges.right && cfg.mms.is_none() {
            x1_exports[n_exp] = nxl.saturating_sub(2);
            x1_exports[n_exp + 1] = nxl.saturating_sub(3);
            n_exp += 2;
        }
        kernels::fused_sweep_version(
            cfg.version,
            cfg.tile_r,
            &mut ws.soa,
            FluxDir::X,
            field,
            &mut ws.prim,
            edges,
            gas,
            &mut ws.flux,
            None,
            1..nxl - 1,
            flo..fhi,
            Some(nxl - 1),
            &x1_exports[..n_exp],
            ledger,
        );
        ws.timers.pause();
        halo.finish_prims(&mut ws.prim);
        ws.timers.start("x:fused");
        kernels::compute_flux_range(
            cfg.version,
            FluxDir::X,
            &ws.prim,
            &patch,
            edges,
            gas,
            &mut ws.flux,
            None,
            0..flo,
            ledger,
        );
        kernels::compute_flux_range(
            cfg.version,
            FluxDir::X,
            &ws.prim,
            &patch,
            edges,
            gas,
            &mut ws.flux,
            None,
            fhi..nxl,
            ledger,
        );
    } else {
        ws.timers.start("x:prims");
        kernels::compute_prims(cfg.version, field, &mut ws.prim, gas, ledger);
        if edges.bottom {
            bc::mirror_prims_axis(&mut ws.prim);
        }
        if edges.top {
            bc::extrap_prims_top(&mut ws.prim, nr);
        }
        ws.timers.pause();
        if viscous {
            // The viscous x-flux takes radial derivatives of u, v, T; at
            // internal radial edges those stencils read exchanged ghost rows
            // (Euler's x-flux is point-local and skips the message).
            halo.exchange_prims_r(&mut ws.prim);
        }
        halo.post_prims(&mut ws.prim);
        ws.timers.start("x:flux");
        kernels::compute_flux_range(
            cfg.version,
            FluxDir::X,
            &ws.prim,
            &patch,
            edges,
            gas,
            &mut ws.flux,
            None,
            flo..fhi,
            ledger,
        );
        ws.timers.pause();
        halo.finish_prims(&mut ws.prim);
        ws.timers.start("x:flux");
        kernels::compute_flux_range(
            cfg.version,
            FluxDir::X,
            &ws.prim,
            &patch,
            edges,
            gas,
            &mut ws.flux,
            None,
            0..flo,
            ledger,
        );
        kernels::compute_flux_range(
            cfg.version,
            FluxDir::X,
            &ws.prim,
            &patch,
            edges,
            gas,
            &mut ws.flux,
            None,
            fhi..nxl,
            ledger,
        );
    }
    ws.timers.pause();
    halo.exchange_flux(&mut ws.flux);
    ws.timers.start(if fused { "x:fused" } else { "x:flux" });
    bc::extrap_flux_x(&mut ws.flux, nxl, nr, edges.left, edges.right, ledger);

    // Characteristic outflow update of the owned global-right column, from
    // the time-n primitives (the column is untouched by the sweep below).
    // Under MMS the outflow column is frozen at the manufactured state (the
    // characteristic model describes physics the manufactured state does not
    // satisfy), so the column simply keeps its exact Dirichlet data.
    if edges.right && cfg.mms.is_none() {
        bc::outflow_characteristic(field, &ws.prim, gas, dt, ledger);
    }

    // --- predictor ----------------------------------------------------------
    ws.timers.start("x:predict");
    let istart = usize::from(edges.left);
    let iend = nxl - usize::from(edges.right);
    predictor_x(variant, field, &ws.flux, &mut ws.qbar, ws.mms.as_deref(), istart, iend, nr, lam, dt, cfg, ledger);
    if edges.left {
        match &cfg.mms {
            Some(spec) => crate::mms::dirichlet_column(&mut ws.qbar, spec, gas, 0),
            None => bc::apply_inflow(&mut ws.qbar, cfg, gas, t + dt, ledger),
        }
    }
    if edges.right {
        for j in 0..nr {
            ws.qbar.set_qvec(nxl - 1, j, field.qvec(nxl - 1, j));
        }
    }

    // --- stage 2: fluxes of the predictor state ----------------------------
    if fused {
        if viscous {
            ws.timers.start("x:fused2");
            kernels::fused_boundary_prims(&ws.qbar, &mut ws.prim, gas, &[0, nxl - 1], ledger);
            ws.timers.pause();
            halo.post_prims(&mut ws.prim);
            ws.timers.start("x:fused2");
            // Stage 2 has no outflow update afterwards; only the edge-column
            // flux passes read primitives back from the AoS planes.
            let mut x2_exports = [0usize; 2];
            let mut n_exp = 0;
            if !edges.left {
                x2_exports[n_exp] = flo;
                n_exp += 1;
            }
            if !edges.right {
                x2_exports[n_exp] = fhi - 1;
                n_exp += 1;
            }
            kernels::fused_sweep_version(
                cfg.version,
                cfg.tile_r,
                &mut ws.soa,
                FluxDir::X,
                &ws.qbar,
                &mut ws.prim,
                edges,
                gas,
                &mut ws.flux_bar,
                None,
                1..nxl - 1,
                flo..fhi,
                Some(nxl - 1),
                &x2_exports[..n_exp],
                ledger,
            );
            ws.timers.pause();
            halo.finish_prims(&mut ws.prim);
            ws.timers.start("x:fused2");
            kernels::compute_flux_range(
                cfg.version,
                FluxDir::X,
                &ws.prim,
                &patch,
                edges,
                gas,
                &mut ws.flux_bar,
                None,
                0..flo,
                ledger,
            );
            kernels::compute_flux_range(
                cfg.version,
                FluxDir::X,
                &ws.prim,
                &patch,
                edges,
                gas,
                &mut ws.flux_bar,
                None,
                fhi..nxl,
                ledger,
            );
        } else {
            // Euler needs no stencil neighbours: the whole stage fuses into
            // a single exchange-free sweep.
            ws.timers.start("x:fused2");
            kernels::fused_sweep_version(
                cfg.version,
                cfg.tile_r,
                &mut ws.soa,
                FluxDir::X,
                &ws.qbar,
                &mut ws.prim,
                edges,
                gas,
                &mut ws.flux_bar,
                None,
                0..nxl,
                0..nxl,
                None,
                &[],
                ledger,
            );
        }
    } else {
        ws.timers.start("x:prims2");
        kernels::compute_prims(cfg.version, &ws.qbar, &mut ws.prim, gas, ledger);
        if edges.bottom {
            bc::mirror_prims_axis(&mut ws.prim);
        }
        if edges.top {
            bc::extrap_prims_top(&mut ws.prim, nr);
        }
        if viscous {
            // The second grouped primitive exchange; Euler skips it (its edge
            // fluxes need no derivative stencils), which is why the paper's
            // Euler run does 12 message start-ups per step against 16 for N-S.
            ws.timers.pause();
            halo.exchange_prims_r(&mut ws.prim);
            halo.post_prims(&mut ws.prim);
            ws.timers.start("x:flux2");
            kernels::compute_flux_range(
                cfg.version,
                FluxDir::X,
                &ws.prim,
                &patch,
                edges,
                gas,
                &mut ws.flux_bar,
                None,
                flo..fhi,
                ledger,
            );
            ws.timers.pause();
            halo.finish_prims(&mut ws.prim);
            ws.timers.start("x:flux2");
            kernels::compute_flux_range(
                cfg.version,
                FluxDir::X,
                &ws.prim,
                &patch,
                edges,
                gas,
                &mut ws.flux_bar,
                None,
                0..flo,
                ledger,
            );
            kernels::compute_flux_range(
                cfg.version,
                FluxDir::X,
                &ws.prim,
                &patch,
                edges,
                gas,
                &mut ws.flux_bar,
                None,
                fhi..nxl,
                ledger,
            );
        } else {
            ws.timers.start("x:flux2");
            kernels::compute_flux(
                cfg.version,
                FluxDir::X,
                &ws.prim,
                &patch,
                edges,
                gas,
                &mut ws.flux_bar,
                None,
                ledger,
            );
        }
    }
    ws.timers.pause();
    halo.exchange_flux(&mut ws.flux_bar);
    ws.timers.start(if fused { "x:fused2" } else { "x:flux2" });
    bc::extrap_flux_x(&mut ws.flux_bar, nxl, nr, edges.left, edges.right, ledger);

    // --- corrector ----------------------------------------------------------
    ws.timers.start("x:correct");
    corrector_x(variant, field, &ws.qbar, &ws.flux_bar, ws.mms.as_deref(), istart, iend, nr, lam, dt, cfg, ledger);

    if edges.left {
        match &cfg.mms {
            Some(spec) => crate::mms::dirichlet_column(field, spec, gas, 0),
            None => bc::apply_inflow(field, cfg, gas, t + dt, ledger),
        }
    }
    ws.timers.pause();
}

/// Apply the radial operator (`Q_t + G_r = S`) over one time step.
///
/// Under the paper's axial decomposition this operator is communication
/// free; under a 2-D pencil decomposition it exchanges prim and flux ghost
/// *rows* with the radial neighbours through the [`XHalo`] radial hooks
/// (no-ops otherwise).
#[allow(clippy::too_many_arguments)]
pub fn r_operator(
    variant: Variant,
    field: &mut Field,
    ws: &mut Workspace,
    cfg: &SolverConfig,
    gas: &GasModel,
    halo: &mut dyn XHalo,
    dt: f64,
    ledger: &mut FlopLedger,
) {
    let patch = field.patch.clone();
    // The radial operator never communicates *axially* (the paper's protocol
    // sends columns only around the axial sweeps), so the viscous
    // cross-derivatives (u_x, v_x, T_x in tau_xr / tau_rr / tau_tt) must be
    // evaluated from local data alone: one-sided stencils at *patch* edges,
    // global or internal. On a whole-grid patch this coincides with the
    // serial boundary treatment; on an internal axial edge it introduces the
    // O(dx^2)-consistent difference the parallel-equivalence tests budget
    // for (Euler, with no stress derivatives, stays bitwise identical, as do
    // pure radial 1xP splits whose exchanged ghost rows feed the same
    // central stencils the serial sweep uses).
    let edges = EdgeFlags { left: true, right: true, bottom: patch.is_global_bottom(), top: patch.is_global_top() };
    let (nxl, nr) = (patch.nxl, patch.nr());
    let lam = dt / (6.0 * patch.grid.dr);
    let viscous = !gas.is_inviscid();
    // The far-field row is frozen during the sweep and rebuilt by the BC;
    // patches that do not own it update every owned row.
    let jend = nr - usize::from(edges.top);

    let fused = cfg.version >= crate::config::Version::V6;

    // --- stage 1 -------------------------------------------------------------
    if fused {
        // Comm-free sweep: fuse the whole stage (prims, radial ghosts, flux
        // and source) into one pipelined pass over the axial stations.
        ws.timers.start("r:fused");
        kernels::fused_sweep_version(
            cfg.version,
            cfg.tile_r,
            &mut ws.soa,
            FluxDir::R,
            field,
            &mut ws.prim,
            edges,
            gas,
            &mut ws.flux,
            Some(&mut ws.src),
            0..nxl,
            0..nxl,
            None,
            &[],
            ledger,
        );
    } else {
        ws.timers.start("r:prims");
        kernels::compute_prims(cfg.version, field, &mut ws.prim, gas, ledger);
        if edges.bottom {
            bc::mirror_prims_axis(&mut ws.prim);
        }
        if edges.top {
            bc::extrap_prims_top(&mut ws.prim, nr);
        }
        ws.timers.pause();
        if viscous {
            halo.exchange_prims_r(&mut ws.prim);
        }
        ws.timers.start("r:flux");
        kernels::compute_flux(
            cfg.version,
            FluxDir::R,
            &ws.prim,
            &patch,
            edges,
            gas,
            &mut ws.flux,
            Some(&mut ws.src),
            ledger,
        );
    }
    ws.timers.pause();
    halo.exchange_flux_r(&mut ws.flux);
    ws.timers.start(if fused { "r:fused" } else { "r:flux" });
    bc::fill_rflux_ghosts_sides(&mut ws.flux, nxl, nr, edges.bottom, edges.top, ledger);

    // --- predictor -------------------------------------------------------------
    ws.timers.start("r:predict");
    {
        let Workspace { flux, src, qbar, mms, .. } = ws;
        predictor_r(variant, field, flux, src, mms.as_deref(), qbar, nxl, jend, lam, dt, cfg, ledger);
    }
    if edges.top {
        for i in 0..nxl {
            ws.qbar.set_qvec(i, nr - 1, field.qvec(i, nr - 1));
        }
    }

    // --- stage 2 -------------------------------------------------------------
    if fused {
        ws.timers.start("r:fused2");
        kernels::fused_sweep_version(
            cfg.version,
            cfg.tile_r,
            &mut ws.soa,
            FluxDir::R,
            &ws.qbar,
            &mut ws.prim,
            edges,
            gas,
            &mut ws.flux_bar,
            Some(&mut ws.src_bar),
            0..nxl,
            0..nxl,
            None,
            &[],
            ledger,
        );
    } else {
        ws.timers.start("r:prims2");
        kernels::compute_prims(cfg.version, &ws.qbar, &mut ws.prim, gas, ledger);
        if edges.bottom {
            bc::mirror_prims_axis(&mut ws.prim);
        }
        if edges.top {
            bc::extrap_prims_top(&mut ws.prim, nr);
        }
        ws.timers.pause();
        if viscous {
            halo.exchange_prims_r(&mut ws.prim);
        }
        ws.timers.start("r:flux2");
        kernels::compute_flux(
            cfg.version,
            FluxDir::R,
            &ws.prim,
            &patch,
            edges,
            gas,
            &mut ws.flux_bar,
            Some(&mut ws.src_bar),
            ledger,
        );
    }
    ws.timers.pause();
    halo.exchange_flux_r(&mut ws.flux_bar);
    ws.timers.start(if fused { "r:fused2" } else { "r:flux2" });
    bc::fill_rflux_ghosts_sides(&mut ws.flux_bar, nxl, nr, edges.bottom, edges.top, ledger);

    // --- corrector -------------------------------------------------------------
    ws.timers.start("r:correct");
    {
        let Workspace { flux_bar, src_bar, qbar, mms, .. } = ws;
        corrector_r(variant, field, qbar, flux_bar, src_bar, mms.as_deref(), nxl, jend, lam, dt, cfg, ledger);
    }

    // Under MMS the top row keeps its exact manufactured data (the sweep
    // above stops at nr-2); the far-field model is a jet boundary condition.
    if edges.top && cfg.mms.is_none() {
        bc::farfield_top(field, gas, gas.pressure(1.0, cfg.jet.t_c), ledger);
    }
    ws.timers.pause();
}

/// One-sided flux difference in x at `(i, j)` (signed local indices),
/// scaled so that multiplying by `dt / (6 h)` yields the update: the 2-4
/// stencil natively, the 2-2 stencil scaled by 6.
#[inline(always)]
fn dflux_x(flux: &FluxField, c: usize, i: isize, j: isize, forward: bool, order: SchemeOrder) -> f64 {
    match (order, forward) {
        (SchemeOrder::TwoFour, true) => {
            7.0 * (flux.at(c, i + 1, j) - flux.at(c, i, j)) - (flux.at(c, i + 2, j) - flux.at(c, i + 1, j))
        }
        (SchemeOrder::TwoFour, false) => {
            7.0 * (flux.at(c, i, j) - flux.at(c, i - 1, j)) - (flux.at(c, i - 1, j) - flux.at(c, i - 2, j))
        }
        (SchemeOrder::TwoTwo, true) => 6.0 * (flux.at(c, i + 1, j) - flux.at(c, i, j)),
        (SchemeOrder::TwoTwo, false) => 6.0 * (flux.at(c, i, j) - flux.at(c, i - 1, j)),
    }
}

/// One-sided flux difference in r at `(i, j)` (same scaling convention).
#[inline(always)]
fn dflux_r(flux: &FluxField, c: usize, i: isize, j: isize, forward: bool, order: SchemeOrder) -> f64 {
    match (order, forward) {
        (SchemeOrder::TwoFour, true) => {
            7.0 * (flux.at(c, i, j + 1) - flux.at(c, i, j)) - (flux.at(c, i, j + 2) - flux.at(c, i, j + 1))
        }
        (SchemeOrder::TwoFour, false) => {
            7.0 * (flux.at(c, i, j) - flux.at(c, i, j - 1)) - (flux.at(c, i, j - 1) - flux.at(c, i, j - 2))
        }
        (SchemeOrder::TwoTwo, true) => 6.0 * (flux.at(c, i, j + 1) - flux.at(c, i, j)),
        (SchemeOrder::TwoTwo, false) => 6.0 * (flux.at(c, i, j) - flux.at(c, i, j - 1)),
    }
}

/// Iterate a 2-D index range in the version's preferred loop order
/// (axial-innermost for V1/V2, radial-innermost for V3+).
#[inline(always)]
fn sweep(
    cfg: &SolverConfig,
    irange: std::ops::Range<usize>,
    jrange: std::ops::Range<usize>,
    mut body: impl FnMut(usize, usize),
) {
    if cfg.version <= crate::config::Version::V2 {
        for j in jrange {
            for i in irange.clone() {
                body(i, j);
            }
        }
    } else {
        for i in irange {
            for j in jrange.clone() {
                body(i, j);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn predictor_x(
    variant: Variant,
    field: &Field,
    flux: &FluxField,
    qbar: &mut Field,
    mms: Option<&MmsSources>,
    istart: usize,
    iend: usize,
    nr: usize,
    lam: f64,
    dt: f64,
    cfg: &SolverConfig,
    ledger: &mut FlopLedger,
) {
    let forward = variant == Variant::L1;
    // The MMS branch is hoisted out of the sweep so production runs take the
    // original loop body untouched (bitwise and performance neutral).
    match mms {
        None => sweep(cfg, istart..iend, 0..nr, |i, j| {
            let (si, sj) = (i as isize, j as isize);
            for c in 0..4 {
                let d = dflux_x(flux, c, si, sj, forward, cfg.scheme);
                qbar.set(c, si, sj, field.at(c, si, sj) - lam * d);
            }
        }),
        Some(m) => sweep(cfg, istart..iend, 0..nr, |i, j| {
            let (si, sj) = (i as isize, j as isize);
            for c in 0..4 {
                let d = dflux_x(flux, c, si, sj, forward, cfg.scheme);
                qbar.set(c, si, sj, field.at(c, si, sj) - lam * d + dt * m.sx[c].at(i + NG, j + NG));
            }
        }),
    }
    ledger.update += ((iend - istart) * nr) as u64 * opcount::COST_PREDICTOR;
}

#[allow(clippy::too_many_arguments)]
fn corrector_x(
    variant: Variant,
    field: &mut Field,
    qbar: &Field,
    flux_bar: &FluxField,
    mms: Option<&MmsSources>,
    istart: usize,
    iend: usize,
    nr: usize,
    lam: f64,
    dt: f64,
    cfg: &SolverConfig,
    ledger: &mut FlopLedger,
) {
    // corrector difference runs opposite to the predictor
    let forward = variant == Variant::L2;
    match mms {
        None => sweep(cfg, istart..iend, 0..nr, |i, j| {
            let (si, sj) = (i as isize, j as isize);
            for c in 0..4 {
                let d = dflux_x(flux_bar, c, si, sj, forward, cfg.scheme);
                let v = 0.5 * (field.at(c, si, sj) + qbar.at(c, si, sj) - lam * d);
                field.set(c, si, sj, v);
            }
        }),
        Some(m) => sweep(cfg, istart..iend, 0..nr, |i, j| {
            let (si, sj) = (i as isize, j as isize);
            for c in 0..4 {
                let d = dflux_x(flux_bar, c, si, sj, forward, cfg.scheme);
                let v = 0.5 * (field.at(c, si, sj) + qbar.at(c, si, sj) - lam * d + dt * m.sx[c].at(i + NG, j + NG));
                field.set(c, si, sj, v);
            }
        }),
    }
    ledger.update += ((iend - istart) * nr) as u64 * opcount::COST_CORRECTOR;
}

#[allow(clippy::too_many_arguments)]
fn predictor_r(
    variant: Variant,
    field: &Field,
    flux: &FluxField,
    src: &ns_numerics::Array2,
    mms: Option<&MmsSources>,
    qbar: &mut Field,
    nxl: usize,
    jend: usize,
    lam: f64,
    dt: f64,
    cfg: &SolverConfig,
    ledger: &mut FlopLedger,
) {
    let forward = variant == Variant::L1;
    // `jend` excludes the far-field row on the patch that owns it (the BC
    // rebuilds that row); interior pencils update every owned row.
    match mms {
        None => sweep(cfg, 0..nxl, 0..jend, |i, j| {
            let (si, sj) = (i as isize, j as isize);
            let s = src.at(i + NG, j + NG);
            for c in 0..4 {
                let d = dflux_r(flux, c, si, sj, forward, cfg.scheme);
                let sc = if c == 2 { dt * s } else { 0.0 };
                qbar.set(c, si, sj, field.at(c, si, sj) - lam * d + sc);
            }
        }),
        Some(m) => sweep(cfg, 0..nxl, 0..jend, |i, j| {
            let (si, sj) = (i as isize, j as isize);
            let s = src.at(i + NG, j + NG);
            for c in 0..4 {
                let d = dflux_r(flux, c, si, sj, forward, cfg.scheme);
                let sc = if c == 2 { dt * s } else { 0.0 };
                qbar.set(c, si, sj, field.at(c, si, sj) - lam * d + sc + dt * m.sr[c].at(i + NG, j + NG));
            }
        }),
    }
    ledger.update += (nxl * jend) as u64 * (opcount::COST_PREDICTOR + 2);
}

#[allow(clippy::too_many_arguments)]
fn corrector_r(
    variant: Variant,
    field: &mut Field,
    qbar: &Field,
    flux_bar: &FluxField,
    src_bar: &ns_numerics::Array2,
    mms: Option<&MmsSources>,
    nxl: usize,
    jend: usize,
    lam: f64,
    dt: f64,
    cfg: &SolverConfig,
    ledger: &mut FlopLedger,
) {
    let forward = variant == Variant::L2;
    match mms {
        None => sweep(cfg, 0..nxl, 0..jend, |i, j| {
            let (si, sj) = (i as isize, j as isize);
            let s = src_bar.at(i + NG, j + NG);
            for c in 0..4 {
                let d = dflux_r(flux_bar, c, si, sj, forward, cfg.scheme);
                let sc = if c == 2 { dt * s } else { 0.0 };
                let v = 0.5 * (field.at(c, si, sj) + qbar.at(c, si, sj) - lam * d + sc);
                field.set(c, si, sj, v);
            }
        }),
        Some(m) => sweep(cfg, 0..nxl, 0..jend, |i, j| {
            let (si, sj) = (i as isize, j as isize);
            let s = src_bar.at(i + NG, j + NG);
            for c in 0..4 {
                let d = dflux_r(flux_bar, c, si, sj, forward, cfg.scheme);
                let sc = if c == 2 { dt * s } else { 0.0 };
                let v =
                    0.5 * (field.at(c, si, sj) + qbar.at(c, si, sj) - lam * d + sc + dt * m.sr[c].at(i + NG, j + NG));
                field.set(c, si, sj, v);
            }
        }),
    }
    ledger.update += (nxl * jend) as u64 * (opcount::COST_CORRECTOR + 2);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Regime, SolverConfig};
    use crate::field::Patch;
    use ns_numerics::gas::Primitive;
    use ns_numerics::Grid;

    fn uniform_setup(regime: Regime) -> (SolverConfig, GasModel, Field, Workspace) {
        let mut cfg = SolverConfig::paper(Grid::small(), regime);
        cfg.excitation.enabled = false;
        let gas = cfg.effective_gas();
        let patch = Patch::whole(cfg.grid.clone());
        // uniform state matching what the inflow would impose at large r is
        // not uniform; instead disable inflow coupling by checking interior
        // columns only in the assertions below.
        let field = Field::from_primitives(patch.clone(), &gas, |_, _| Primitive {
            rho: 1.0,
            u: 0.4,
            v: 0.0,
            p: gas.pressure(1.0, 1.0),
        });
        let ws = Workspace::new(&field.patch);
        (cfg, gas, field, ws)
    }

    /// Free-stream preservation of the radial operator: for a uniform state
    /// the flux divergence `dG/dr` must exactly balance the source `S`
    /// (G_3 = r p, S_3 = p), so the interior stays uniform.
    #[test]
    fn r_operator_preserves_uniform_flow() {
        for regime in [Regime::Euler, Regime::NavierStokes] {
            let (cfg, gas, mut field, mut ws) = uniform_setup(regime);
            let before = field.clone();
            let mut ledger = FlopLedger::default();
            let dt = cfg.time_step();
            for variant in [Variant::L1, Variant::L2] {
                r_operator(variant, &mut field, &mut ws, &cfg, &gas, &mut NoHalo, dt, &mut ledger);
            }
            // exclude the far-field row which is reset by the BC
            let mut max = 0.0_f64;
            for c in 0..4 {
                for i in 0..field.nxl() {
                    for j in 0..field.nr() - 1 {
                        max =
                            max.max((field.at(c, i as isize, j as isize) - before.at(c, i as isize, j as isize)).abs());
                    }
                }
            }
            assert!(max < 1e-11, "{regime:?}: uniform state drifted by {max}");
        }
    }

    /// Free-stream preservation of the axial operator away from the inflow
    /// column (which is Dirichlet and exactly uniform here).
    #[test]
    fn x_operator_preserves_uniform_flow() {
        for regime in [Regime::Euler, Regime::NavierStokes] {
            let (mut cfg, gas, mut field, mut ws) = uniform_setup(regime);
            // make the mean inflow equal to the uniform state so the
            // Dirichlet column is compatible
            cfg.jet.u_c = 0.4;
            cfg.jet.u_inf = 0.4;
            cfg.jet.t_c = 1.0;
            cfg.jet.t_inf = 1.0;
            cfg.jet.mach_c = 0.0; // no Crocco-Busemann heating: T uniform
            let mut ledger = FlopLedger::default();
            let dt = cfg.time_step();
            for variant in [Variant::L1, Variant::L2] {
                x_operator(variant, &mut field, &mut ws, &cfg, &gas, &mut NoHalo, 0.0, dt, &mut ledger);
            }
            for c in 0..4 {
                for i in 0..field.nxl() {
                    for j in 0..field.nr() {
                        let r = field.patch.r(j);
                        let q0 = match c {
                            0 => r * 1.0,
                            1 => r * 0.4,
                            2 => 0.0,
                            _ => r * gas.total_energy(1.0, 0.4, 0.0, gas.pressure(1.0, 1.0)),
                        };
                        let d = (field.at(c, i as isize, j as isize) - q0).abs();
                        assert!(d < 1e-11, "{regime:?} c={c} ({i},{j}): {d}");
                    }
                }
            }
            let _ = ledger;
        }
    }

    /// The predictor of L1 must be the mirror of L2 on a linear flux field.
    #[test]
    fn l1_l2_flux_differences_are_symmetric() {
        let (cfg, _gas, field, _ws) = uniform_setup(Regime::Euler);
        let patch = field.patch.clone();
        let mut flux = FluxField::zeros(&patch);
        // flux linear in i: one-sided differences must agree exactly
        for c in 0..4 {
            for i in -2..(patch.nxl as isize + 2) {
                for j in 0..patch.nr() as isize {
                    flux.set(c, i, j, 3.0 * i as f64 + c as f64);
                }
            }
        }
        let f = dflux_x(&flux, 0, 5, 3, true, SchemeOrder::TwoFour);
        let b = dflux_x(&flux, 0, 5, 3, false, SchemeOrder::TwoFour);
        assert!((f - b).abs() < 1e-12);
        assert!((f - 18.0).abs() < 1e-12, "7*3 - 3 = 18 per unit");
        let _ = cfg;
    }

    // The cross-version equivalence tests (V1..V5 truncation-level, V5/V6
    // bitwise with identical ledgers) formerly here are now cells of the
    // ns-verify differential oracle matrix (`ns_verify::oracle`), which
    // covers them per regime, per processor count, and per driver.
}
