//! Analytic per-step workload description, the bridge between the real
//! solver and the architecture simulator.
//!
//! The discrete-event platform simulator (`ns-archsim`) replays the solver's
//! per-step structure — compute phases interleaved with the paper's message
//! protocol — without integrating any PDEs. This module derives that
//! structure from the same per-point cost constants the live solver's FLOP
//! ledger uses, so a unit test can pin the two against each other.

use crate::config::Regime;
use crate::opcount;
use ns_numerics::Grid;
use serde::Serialize;

/// Which direction the domain is decomposed in.
///
/// The paper decomposes "by blocks along the axial direction only" and
/// names radial blocking as future work ("We will then explore other
/// problem decompositions such as blocking along the radial direction");
/// [`step_workload_decomposed`] models both so the ablation can be run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Decomposition {
    /// Axial blocks (the paper's choice): halo columns of `nr` points.
    Axial,
    /// Radial blocks: halo rows of `nx` points, exchanged around the radial
    /// operator instead.
    Radial,
}

/// Length of the `rank`-th of `size` blocks over `n` cells (the standard
/// remainder-spreading rule, matching `field::Patch::block`).
pub fn block_len(n: usize, rank: usize, size: usize) -> usize {
    n / size + usize::from(rank < n % size)
}

/// One element of a rank's per-step program.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub enum PhaseOp {
    /// Busy computation of `flops` floating-point operations.
    Compute {
        /// Phase label (for per-phase reporting).
        label: &'static str,
        /// FP operations in this phase.
        flops: u64,
    },
    /// Grouped primitive-column exchange with both neighbours
    /// (`u, v, T` — one column each way; the paper's "velocity and
    /// temperature values … packaged into a single send").
    ExchangePrims {
        /// Message payload per neighbour, in bytes.
        bytes: u64,
    },
    /// Two-column flux exchange with both neighbours ("the two flux columns
    /// nearest each boundary are combined into a single send").
    ExchangeFlux {
        /// Message payload per neighbour, in bytes.
        bytes: u64,
    },
    /// Primitive ghost-*row* exchange with the radial neighbours of a 2-D
    /// pencil (one padded-width row each way; viscous runs only).
    ExchangePrimsR {
        /// Message payload per radial neighbour, in bytes.
        bytes: u64,
    },
    /// Two-row flux exchange with the radial neighbours of a 2-D pencil
    /// (the 2-4 stencil reads `j±2`).
    ExchangeFluxR {
        /// Message payload per radial neighbour, in bytes.
        bytes: u64,
    },
}

impl PhaseOp {
    /// True for the axial (column) exchanges of the paper's protocol.
    pub fn is_axial_exchange(&self) -> bool {
        matches!(self, PhaseOp::ExchangePrims { .. } | PhaseOp::ExchangeFlux { .. })
    }

    /// True for the radial (row) exchanges of the pencil protocol.
    pub fn is_radial_exchange(&self) -> bool {
        matches!(self, PhaseOp::ExchangePrimsR { .. } | PhaseOp::ExchangeFluxR { .. })
    }
}

/// Per-step workload of one rank owning `nxl` axial columns.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct StepWorkload {
    /// Operations in program order.
    pub ops: Vec<PhaseOp>,
    /// Number of radial points (sets message sizes).
    pub nr: usize,
    /// Number of owned axial columns.
    pub nxl: usize,
}

/// Bytes of one grouped primitive message (`u, v, T`, one halo line of
/// `points` values per variable).
pub fn prim_message_bytes(points: usize) -> u64 {
    (3 * points * 8) as u64
}

/// Bytes of one two-line flux message (4 components).
pub fn flux_message_bytes(points: usize) -> u64 {
    (4 * 2 * points * 8) as u64
}

/// Build the per-step program of a rank with `nxl` owned columns.
///
/// Structure (matching `scheme::{x_operator, r_operator}` exactly):
///
/// * radial operator: prims, G+S, predictor, prims, G+S, corrector — no
///   communication;
/// * axial operator: prims, **exchange prims**, F, **exchange flux**,
///   predictor, prims, (**exchange prims** — N-S only), F, **exchange
///   flux**, corrector.
///
/// Per step that is 4 sends + 4 receives per internal neighbour pair for
/// N-S (16 start-ups with two neighbours) and 3 + 3 for Euler (12), which
/// reproduces the paper's Table 1 start-up counts.
pub fn step_workload(regime: Regime, grid: &Grid, nxl: usize) -> StepWorkload {
    // axial ranks span the full radial extent, so every one of them owns
    // the far-field row its radial updates exclude
    step_workload_decomposed(regime, grid, nxl, Decomposition::Axial, true)
}

/// Build the per-step program for either decomposition direction; `local`
/// is the number of owned columns (axial) or rows (radial), and
/// `owns_far_field` says whether this rank's radial extent reaches the
/// far-field boundary (whose row the radial updates exclude) — always true
/// for axial blocks, true only for the top rank of a radial decomposition.
pub fn step_workload_decomposed(
    regime: Regime,
    grid: &Grid,
    local: usize,
    decomp: Decomposition,
    owns_far_field: bool,
) -> StepWorkload {
    let (nxl, nrl) = match decomp {
        Decomposition::Axial => (local, grid.nr),
        Decomposition::Radial => (grid.nx, local),
    };
    let update_rows = nrl - usize::from(owns_far_field);
    let pts = (nxl * nrl) as u64;
    let viscous = regime == Regime::NavierStokes;
    let flux_cost = if viscous { opcount::COST_FLUX_VISCOUS } else { opcount::COST_FLUX_INVISCID };
    // halo lines run across the *other* direction
    let halo_points = match decomp {
        Decomposition::Axial => nrl,
        Decomposition::Radial => nxl,
    };
    let prim_bytes = prim_message_bytes(halo_points);
    let flux_bytes = flux_message_bytes(halo_points);
    let comm_in_r = decomp == Decomposition::Radial;

    let mut ops = Vec::with_capacity(18);
    // --- radial operator (communicates only under radial decomposition) ---
    ops.push(PhaseOp::Compute { label: "r:prims", flops: pts * opcount::COST_PRIMS });
    if comm_in_r {
        ops.push(PhaseOp::ExchangePrims { bytes: prim_bytes });
    }
    ops.push(PhaseOp::Compute { label: "r:flux", flops: pts * (flux_cost + opcount::COST_SOURCE) });
    if comm_in_r {
        ops.push(PhaseOp::ExchangeFlux { bytes: flux_bytes });
    }
    ops.push(PhaseOp::Compute {
        label: "r:predict",
        flops: (nxl * update_rows) as u64 * (opcount::COST_PREDICTOR + 2),
    });
    ops.push(PhaseOp::Compute { label: "r:prims2", flops: pts * opcount::COST_PRIMS });
    if comm_in_r && viscous {
        ops.push(PhaseOp::ExchangePrims { bytes: prim_bytes });
    }
    ops.push(PhaseOp::Compute { label: "r:flux2", flops: pts * (flux_cost + opcount::COST_SOURCE) });
    if comm_in_r {
        ops.push(PhaseOp::ExchangeFlux { bytes: flux_bytes });
    }
    ops.push(PhaseOp::Compute {
        label: "r:correct",
        flops: (nxl * update_rows) as u64 * (opcount::COST_CORRECTOR + 2),
    });
    // --- axial operator (communicates only under axial decomposition) ---
    ops.push(PhaseOp::Compute { label: "x:prims", flops: pts * opcount::COST_PRIMS });
    if !comm_in_r {
        ops.push(PhaseOp::ExchangePrims { bytes: prim_bytes });
    }
    ops.push(PhaseOp::Compute { label: "x:flux", flops: pts * flux_cost });
    if !comm_in_r {
        ops.push(PhaseOp::ExchangeFlux { bytes: flux_bytes });
    }
    ops.push(PhaseOp::Compute { label: "x:predict", flops: pts * opcount::COST_PREDICTOR });
    ops.push(PhaseOp::Compute { label: "x:prims2", flops: pts * opcount::COST_PRIMS });
    if !comm_in_r && viscous {
        ops.push(PhaseOp::ExchangePrims { bytes: prim_bytes });
    }
    ops.push(PhaseOp::Compute { label: "x:flux2", flops: pts * flux_cost });
    if !comm_in_r {
        ops.push(PhaseOp::ExchangeFlux { bytes: flux_bytes });
    }
    ops.push(PhaseOp::Compute { label: "x:correct", flops: pts * opcount::COST_CORRECTOR });

    StepWorkload { ops, nr: nrl, nxl }
}

/// Build the per-step program of one pencil of a 2-D (axial × radial)
/// decomposition owning `nxl` columns × `nrl` rows.
///
/// The axial protocol is the paper's, with column messages of `nrl` points.
/// The radial protocol mirrors it around the radial sweeps: one primitive
/// ghost row each way before every viscous flux evaluation (all four
/// stages — the viscous stress tensor takes radial derivatives in *both*
/// operators), and a two-row flux packet around each radial flux stage.
/// Euler's fluxes are point-local in the primitives, so only the two flux
/// rows remain: 12 radial start-ups per step per interior neighbour pair
/// for N-S against 4 for Euler. Radial rows span the padded width
/// `nxl + 2 NG`, which is how the edge-adjacent corner strips travel.
pub fn step_workload_pencil(regime: Regime, grid: &Grid, nxl: usize, nrl: usize, owns_far_field: bool) -> StepWorkload {
    debug_assert!(nxl <= grid.nx && nrl <= grid.nr, "pencil exceeds the grid");
    let update_rows = nrl - usize::from(owns_far_field);
    let pts = (nxl * nrl) as u64;
    let viscous = regime == Regime::NavierStokes;
    let flux_cost = if viscous { opcount::COST_FLUX_VISCOUS } else { opcount::COST_FLUX_INVISCID };
    let prim_bytes = prim_message_bytes(nrl);
    let flux_bytes = flux_message_bytes(nrl);
    let row_points = nxl + 2 * crate::field::NG;
    let prim_r_bytes = prim_message_bytes(row_points);
    let flux_r_bytes = flux_message_bytes(row_points);

    let mut ops = Vec::with_capacity(24);
    // --- radial operator ---------------------------------------------------
    ops.push(PhaseOp::Compute { label: "r:prims", flops: pts * opcount::COST_PRIMS });
    if viscous {
        ops.push(PhaseOp::ExchangePrimsR { bytes: prim_r_bytes });
    }
    ops.push(PhaseOp::Compute { label: "r:flux", flops: pts * (flux_cost + opcount::COST_SOURCE) });
    ops.push(PhaseOp::ExchangeFluxR { bytes: flux_r_bytes });
    ops.push(PhaseOp::Compute {
        label: "r:predict",
        flops: (nxl * update_rows) as u64 * (opcount::COST_PREDICTOR + 2),
    });
    ops.push(PhaseOp::Compute { label: "r:prims2", flops: pts * opcount::COST_PRIMS });
    if viscous {
        ops.push(PhaseOp::ExchangePrimsR { bytes: prim_r_bytes });
    }
    ops.push(PhaseOp::Compute { label: "r:flux2", flops: pts * (flux_cost + opcount::COST_SOURCE) });
    ops.push(PhaseOp::ExchangeFluxR { bytes: flux_r_bytes });
    ops.push(PhaseOp::Compute {
        label: "r:correct",
        flops: (nxl * update_rows) as u64 * (opcount::COST_CORRECTOR + 2),
    });
    // --- axial operator ----------------------------------------------------
    ops.push(PhaseOp::Compute { label: "x:prims", flops: pts * opcount::COST_PRIMS });
    if viscous {
        ops.push(PhaseOp::ExchangePrimsR { bytes: prim_r_bytes });
    }
    ops.push(PhaseOp::ExchangePrims { bytes: prim_bytes });
    ops.push(PhaseOp::Compute { label: "x:flux", flops: pts * flux_cost });
    ops.push(PhaseOp::ExchangeFlux { bytes: flux_bytes });
    ops.push(PhaseOp::Compute { label: "x:predict", flops: pts * opcount::COST_PREDICTOR });
    ops.push(PhaseOp::Compute { label: "x:prims2", flops: pts * opcount::COST_PRIMS });
    if viscous {
        ops.push(PhaseOp::ExchangePrimsR { bytes: prim_r_bytes });
        ops.push(PhaseOp::ExchangePrims { bytes: prim_bytes });
    }
    ops.push(PhaseOp::Compute { label: "x:flux2", flops: pts * flux_cost });
    ops.push(PhaseOp::ExchangeFlux { bytes: flux_bytes });
    ops.push(PhaseOp::Compute { label: "x:correct", flops: pts * opcount::COST_CORRECTOR });

    StepWorkload { ops, nr: nrl, nxl }
}

/// Build the per-step program with phase labels matching `version`'s timer
/// vocabulary. V1–V5 share the prims/flux phase split; the fused V6 path
/// merges primitive recovery into the flux sweep, so its timers report the
/// combined phases as `r:fused` / `x:fused2` etc. The flops and the message
/// protocol are identical across versions — only the labels change.
pub fn step_workload_versioned(
    regime: Regime,
    grid: &Grid,
    nxl: usize,
    version: crate::config::Version,
) -> StepWorkload {
    let mut w = step_workload(regime, grid, nxl);
    if version >= crate::config::Version::V6 {
        w.relabel_fused();
    }
    w
}

impl StepWorkload {
    /// Rewrite the compute-phase labels to the fused V6 vocabulary (each
    /// prims phase merges into the flux sweep that follows it).
    pub fn relabel_fused(&mut self) {
        for op in &mut self.ops {
            if let PhaseOp::Compute { label, .. } = op {
                *label = match *label {
                    "r:prims" | "r:flux" => "r:fused",
                    "r:prims2" | "r:flux2" => "r:fused2",
                    "x:prims" | "x:flux" => "x:fused",
                    "x:prims2" | "x:flux2" => "x:fused2",
                    other => other,
                };
            }
        }
    }

    /// Total compute FLOPs per step.
    pub fn compute_flops(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                PhaseOp::Compute { flops, .. } => *flops,
                _ => 0,
            })
            .sum()
    }

    /// Message start-ups per step for a rank with `neighbors` neighbours,
    /// counting each send and each receive (the paper's convention: Table 1
    /// reports 80,000 N-S start-ups per processor over 5000 steps at 16
    /// processors, i.e. 16 per step with two neighbours).
    pub fn startups_per_step(&self, neighbors: usize) -> u64 {
        let exchanges = self.ops.iter().filter(|op| !matches!(op, PhaseOp::Compute { .. })).count() as u64;
        exchanges * neighbors as u64 * 2 // one send + one recv per neighbour
    }

    /// Bytes sent per step for a rank with `neighbors` neighbours.
    pub fn bytes_sent_per_step(&self, neighbors: usize) -> u64 {
        let per_neighbor: u64 = self
            .ops
            .iter()
            .map(|op| match op {
                PhaseOp::ExchangePrims { bytes } | PhaseOp::ExchangeFlux { bytes } => *bytes,
                _ => 0,
            })
            .sum();
        per_neighbor * neighbors as u64
    }

    /// Message start-ups per step of a pencil rank, counting axial and
    /// radial exchanges against their own neighbour counts.
    pub fn startups_per_step_pencil(&self, ax_neighbors: usize, rad_neighbors: usize) -> u64 {
        let ax = self.ops.iter().filter(|op| op.is_axial_exchange()).count() as u64;
        let rad = self.ops.iter().filter(|op| op.is_radial_exchange()).count() as u64;
        (ax * ax_neighbors as u64 + rad * rad_neighbors as u64) * 2
    }

    /// Bytes sent per step of a pencil rank.
    pub fn bytes_sent_per_step_pencil(&self, ax_neighbors: usize, rad_neighbors: usize) -> u64 {
        let mut total = 0u64;
        for op in &self.ops {
            match op {
                PhaseOp::ExchangePrims { bytes } | PhaseOp::ExchangeFlux { bytes } => {
                    total += bytes * ax_neighbors as u64;
                }
                PhaseOp::ExchangePrimsR { bytes } | PhaseOp::ExchangeFluxR { bytes } => {
                    total += bytes * rad_neighbors as u64;
                }
                PhaseOp::Compute { .. } => {}
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn navier_stokes_has_16_startups_per_step() {
        let w = step_workload(Regime::NavierStokes, &Grid::paper(), 16);
        assert_eq!(w.startups_per_step(2), 16);
        // 5000 steps -> the paper's 80,000 per-processor start-ups
        assert_eq!(w.startups_per_step(2) * 5000, 80_000);
    }

    #[test]
    fn euler_has_12_startups_per_step() {
        let w = step_workload(Regime::Euler, &Grid::paper(), 16);
        assert_eq!(w.startups_per_step(2), 12);
        assert_eq!(w.startups_per_step(2) * 5000, 60_000);
    }

    #[test]
    fn message_sizes_follow_grid() {
        let g = Grid::paper();
        assert_eq!(prim_message_bytes(g.nr), 2400);
        assert_eq!(flux_message_bytes(g.nr), 6400);
    }

    #[test]
    fn euler_computes_roughly_half_of_ns() {
        let g = Grid::paper();
        let ns = step_workload(Regime::NavierStokes, &g, g.nx).compute_flops();
        let eu = step_workload(Regime::Euler, &g, g.nx).compute_flops();
        let ratio = eu as f64 / ns as f64;
        // the paper's Table 1 ratio is 77/145 = 0.53
        assert!(ratio > 0.4 && ratio < 0.75, "ratio {ratio}");
    }

    #[test]
    fn compute_scales_linearly_with_columns() {
        let g = Grid::paper();
        let a = step_workload(Regime::NavierStokes, &g, 100).compute_flops();
        let b = step_workload(Regime::NavierStokes, &g, 200).compute_flops();
        let rel = (b as f64 - 2.0 * a as f64).abs() / b as f64;
        assert!(rel < 1e-12, "linear in nxl");
    }

    #[test]
    fn v6_workload_fuses_labels_but_not_flops_or_protocol() {
        use crate::config::Version;
        let g = Grid::paper();
        let v5 = step_workload_versioned(Regime::NavierStokes, &g, 16, Version::V5);
        let v6 = step_workload_versioned(Regime::NavierStokes, &g, 16, Version::V6);
        assert_eq!(v5, step_workload(Regime::NavierStokes, &g, 16));
        assert_eq!(v5.compute_flops(), v6.compute_flops());
        assert_eq!(v5.startups_per_step(2), v6.startups_per_step(2));
        assert_eq!(v5.ops.len(), v6.ops.len());
        let labels: Vec<&str> = v6
            .ops
            .iter()
            .filter_map(|op| match op {
                PhaseOp::Compute { label, .. } => Some(*label),
                _ => None,
            })
            .collect();
        assert!(labels.contains(&"r:fused") && labels.contains(&"x:fused2"));
        assert!(!labels.iter().any(|l| l.contains("prims") || l.ends_with("flux") || l.ends_with("flux2")));
        // the predictor/corrector phases keep their names
        assert!(labels.contains(&"x:predict") && labels.contains(&"r:correct"));
    }

    #[test]
    fn edge_rank_sends_half_of_interior_rank() {
        let w = step_workload(Regime::NavierStokes, &Grid::paper(), 16);
        assert_eq!(w.bytes_sent_per_step(1) * 2, w.bytes_sent_per_step(2));
    }

    #[test]
    fn pencil_radial_protocol_startup_counts() {
        let g = Grid::paper();
        // N-S: 4 axial exchanges (16 start-ups with two axial neighbours)
        // plus 6 radial ones (24 with two radial neighbours)
        let ns = step_workload_pencil(Regime::NavierStokes, &g, 16, 12, false);
        assert_eq!(ns.startups_per_step_pencil(2, 0), 16);
        assert_eq!(ns.startups_per_step_pencil(2, 2), 40);
        // Euler: point-local fluxes keep only the two flux-row exchanges
        let eu = step_workload_pencil(Regime::Euler, &g, 16, 12, false);
        assert_eq!(eu.startups_per_step_pencil(2, 0), 12);
        assert_eq!(eu.startups_per_step_pencil(2, 2), 20);
    }

    #[test]
    fn pencil_degenerates_to_axial_compute() {
        let g = Grid::paper();
        let axial = step_workload(Regime::NavierStokes, &g, 16);
        let pencil = step_workload_pencil(Regime::NavierStokes, &g, 16, g.nr, true);
        assert_eq!(axial.compute_flops(), pencil.compute_flops());
        // with no radial neighbours the pencil sends exactly the axial bytes
        assert_eq!(axial.bytes_sent_per_step(2), pencil.bytes_sent_per_step_pencil(2, 0));
    }

    #[test]
    fn pencil_radial_rows_span_padded_width() {
        let g = Grid::paper();
        let w = step_workload_pencil(Regime::NavierStokes, &g, 16, 12, false);
        let row_bytes: Vec<u64> = w
            .ops
            .iter()
            .filter_map(|op| match op {
                PhaseOp::ExchangePrimsR { bytes } => Some(*bytes),
                _ => None,
            })
            .collect();
        // 3 planes x (nxl + 2 NG) points x 8 bytes: the corner strips ride
        // along with the owned row
        assert!(row_bytes.iter().all(|&b| b == 3 * (16 + 2 * crate::field::NG as u64) * 8));
    }
}
