//! Analytic per-step workload description, the bridge between the real
//! solver and the architecture simulator.
//!
//! The discrete-event platform simulator (`ns-archsim`) replays the solver's
//! per-step structure — compute phases interleaved with the paper's message
//! protocol — without integrating any PDEs. This module derives that
//! structure from the same per-point cost constants the live solver's FLOP
//! ledger uses, so a unit test can pin the two against each other.

use crate::config::Regime;
use crate::opcount;
use ns_numerics::Grid;
use serde::Serialize;

/// Which direction the domain is decomposed in.
///
/// The paper decomposes "by blocks along the axial direction only" and
/// names radial blocking as future work ("We will then explore other
/// problem decompositions such as blocking along the radial direction");
/// [`step_workload_decomposed`] models both so the ablation can be run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Decomposition {
    /// Axial blocks (the paper's choice): halo columns of `nr` points.
    Axial,
    /// Radial blocks: halo rows of `nx` points, exchanged around the radial
    /// operator instead.
    Radial,
}

/// Length of the `rank`-th of `size` blocks over `n` cells (the standard
/// remainder-spreading rule, matching `field::Patch::block`).
pub fn block_len(n: usize, rank: usize, size: usize) -> usize {
    n / size + usize::from(rank < n % size)
}

/// One element of a rank's per-step program.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub enum PhaseOp {
    /// Busy computation of `flops` floating-point operations.
    Compute {
        /// Phase label (for per-phase reporting).
        label: &'static str,
        /// FP operations in this phase.
        flops: u64,
    },
    /// Grouped primitive-column exchange with both neighbours
    /// (`u, v, T` — one column each way; the paper's "velocity and
    /// temperature values … packaged into a single send").
    ExchangePrims {
        /// Message payload per neighbour, in bytes.
        bytes: u64,
    },
    /// Two-column flux exchange with both neighbours ("the two flux columns
    /// nearest each boundary are combined into a single send").
    ExchangeFlux {
        /// Message payload per neighbour, in bytes.
        bytes: u64,
    },
}

/// Per-step workload of one rank owning `nxl` axial columns.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct StepWorkload {
    /// Operations in program order.
    pub ops: Vec<PhaseOp>,
    /// Number of radial points (sets message sizes).
    pub nr: usize,
    /// Number of owned axial columns.
    pub nxl: usize,
}

/// Bytes of one grouped primitive message (`u, v, T`, one halo line of
/// `points` values per variable).
pub fn prim_message_bytes(points: usize) -> u64 {
    (3 * points * 8) as u64
}

/// Bytes of one two-line flux message (4 components).
pub fn flux_message_bytes(points: usize) -> u64 {
    (4 * 2 * points * 8) as u64
}

/// Build the per-step program of a rank with `nxl` owned columns.
///
/// Structure (matching `scheme::{x_operator, r_operator}` exactly):
///
/// * radial operator: prims, G+S, predictor, prims, G+S, corrector — no
///   communication;
/// * axial operator: prims, **exchange prims**, F, **exchange flux**,
///   predictor, prims, (**exchange prims** — N-S only), F, **exchange
///   flux**, corrector.
///
/// Per step that is 4 sends + 4 receives per internal neighbour pair for
/// N-S (16 start-ups with two neighbours) and 3 + 3 for Euler (12), which
/// reproduces the paper's Table 1 start-up counts.
pub fn step_workload(regime: Regime, grid: &Grid, nxl: usize) -> StepWorkload {
    // axial ranks span the full radial extent, so every one of them owns
    // the far-field row its radial updates exclude
    step_workload_decomposed(regime, grid, nxl, Decomposition::Axial, true)
}

/// Build the per-step program for either decomposition direction; `local`
/// is the number of owned columns (axial) or rows (radial), and
/// `owns_far_field` says whether this rank's radial extent reaches the
/// far-field boundary (whose row the radial updates exclude) — always true
/// for axial blocks, true only for the top rank of a radial decomposition.
pub fn step_workload_decomposed(
    regime: Regime,
    grid: &Grid,
    local: usize,
    decomp: Decomposition,
    owns_far_field: bool,
) -> StepWorkload {
    let (nxl, nrl) = match decomp {
        Decomposition::Axial => (local, grid.nr),
        Decomposition::Radial => (grid.nx, local),
    };
    let update_rows = nrl - usize::from(owns_far_field);
    let pts = (nxl * nrl) as u64;
    let viscous = regime == Regime::NavierStokes;
    let flux_cost = if viscous { opcount::COST_FLUX_VISCOUS } else { opcount::COST_FLUX_INVISCID };
    // halo lines run across the *other* direction
    let halo_points = match decomp {
        Decomposition::Axial => nrl,
        Decomposition::Radial => nxl,
    };
    let prim_bytes = prim_message_bytes(halo_points);
    let flux_bytes = flux_message_bytes(halo_points);
    let comm_in_r = decomp == Decomposition::Radial;

    let mut ops = Vec::with_capacity(18);
    // --- radial operator (communicates only under radial decomposition) ---
    ops.push(PhaseOp::Compute { label: "r:prims", flops: pts * opcount::COST_PRIMS });
    if comm_in_r {
        ops.push(PhaseOp::ExchangePrims { bytes: prim_bytes });
    }
    ops.push(PhaseOp::Compute { label: "r:flux", flops: pts * (flux_cost + opcount::COST_SOURCE) });
    if comm_in_r {
        ops.push(PhaseOp::ExchangeFlux { bytes: flux_bytes });
    }
    ops.push(PhaseOp::Compute {
        label: "r:predict",
        flops: (nxl * update_rows) as u64 * (opcount::COST_PREDICTOR + 2),
    });
    ops.push(PhaseOp::Compute { label: "r:prims2", flops: pts * opcount::COST_PRIMS });
    if comm_in_r && viscous {
        ops.push(PhaseOp::ExchangePrims { bytes: prim_bytes });
    }
    ops.push(PhaseOp::Compute { label: "r:flux2", flops: pts * (flux_cost + opcount::COST_SOURCE) });
    if comm_in_r {
        ops.push(PhaseOp::ExchangeFlux { bytes: flux_bytes });
    }
    ops.push(PhaseOp::Compute {
        label: "r:correct",
        flops: (nxl * update_rows) as u64 * (opcount::COST_CORRECTOR + 2),
    });
    // --- axial operator (communicates only under axial decomposition) ---
    ops.push(PhaseOp::Compute { label: "x:prims", flops: pts * opcount::COST_PRIMS });
    if !comm_in_r {
        ops.push(PhaseOp::ExchangePrims { bytes: prim_bytes });
    }
    ops.push(PhaseOp::Compute { label: "x:flux", flops: pts * flux_cost });
    if !comm_in_r {
        ops.push(PhaseOp::ExchangeFlux { bytes: flux_bytes });
    }
    ops.push(PhaseOp::Compute { label: "x:predict", flops: pts * opcount::COST_PREDICTOR });
    ops.push(PhaseOp::Compute { label: "x:prims2", flops: pts * opcount::COST_PRIMS });
    if !comm_in_r && viscous {
        ops.push(PhaseOp::ExchangePrims { bytes: prim_bytes });
    }
    ops.push(PhaseOp::Compute { label: "x:flux2", flops: pts * flux_cost });
    if !comm_in_r {
        ops.push(PhaseOp::ExchangeFlux { bytes: flux_bytes });
    }
    ops.push(PhaseOp::Compute { label: "x:correct", flops: pts * opcount::COST_CORRECTOR });

    StepWorkload { ops, nr: nrl, nxl }
}

/// Build the per-step program with phase labels matching `version`'s timer
/// vocabulary. V1–V5 share the prims/flux phase split; the fused V6 path
/// merges primitive recovery into the flux sweep, so its timers report the
/// combined phases as `r:fused` / `x:fused2` etc. The flops and the message
/// protocol are identical across versions — only the labels change.
pub fn step_workload_versioned(
    regime: Regime,
    grid: &Grid,
    nxl: usize,
    version: crate::config::Version,
) -> StepWorkload {
    let mut w = step_workload(regime, grid, nxl);
    if version >= crate::config::Version::V6 {
        w.relabel_fused();
    }
    w
}

impl StepWorkload {
    /// Rewrite the compute-phase labels to the fused V6 vocabulary (each
    /// prims phase merges into the flux sweep that follows it).
    pub fn relabel_fused(&mut self) {
        for op in &mut self.ops {
            if let PhaseOp::Compute { label, .. } = op {
                *label = match *label {
                    "r:prims" | "r:flux" => "r:fused",
                    "r:prims2" | "r:flux2" => "r:fused2",
                    "x:prims" | "x:flux" => "x:fused",
                    "x:prims2" | "x:flux2" => "x:fused2",
                    other => other,
                };
            }
        }
    }

    /// Total compute FLOPs per step.
    pub fn compute_flops(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                PhaseOp::Compute { flops, .. } => *flops,
                _ => 0,
            })
            .sum()
    }

    /// Message start-ups per step for a rank with `neighbors` neighbours,
    /// counting each send and each receive (the paper's convention: Table 1
    /// reports 80,000 N-S start-ups per processor over 5000 steps at 16
    /// processors, i.e. 16 per step with two neighbours).
    pub fn startups_per_step(&self, neighbors: usize) -> u64 {
        let exchanges = self.ops.iter().filter(|op| !matches!(op, PhaseOp::Compute { .. })).count() as u64;
        exchanges * neighbors as u64 * 2 // one send + one recv per neighbour
    }

    /// Bytes sent per step for a rank with `neighbors` neighbours.
    pub fn bytes_sent_per_step(&self, neighbors: usize) -> u64 {
        let per_neighbor: u64 = self
            .ops
            .iter()
            .map(|op| match op {
                PhaseOp::ExchangePrims { bytes } | PhaseOp::ExchangeFlux { bytes } => *bytes,
                _ => 0,
            })
            .sum();
        per_neighbor * neighbors as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn navier_stokes_has_16_startups_per_step() {
        let w = step_workload(Regime::NavierStokes, &Grid::paper(), 16);
        assert_eq!(w.startups_per_step(2), 16);
        // 5000 steps -> the paper's 80,000 per-processor start-ups
        assert_eq!(w.startups_per_step(2) * 5000, 80_000);
    }

    #[test]
    fn euler_has_12_startups_per_step() {
        let w = step_workload(Regime::Euler, &Grid::paper(), 16);
        assert_eq!(w.startups_per_step(2), 12);
        assert_eq!(w.startups_per_step(2) * 5000, 60_000);
    }

    #[test]
    fn message_sizes_follow_grid() {
        let g = Grid::paper();
        assert_eq!(prim_message_bytes(g.nr), 2400);
        assert_eq!(flux_message_bytes(g.nr), 6400);
    }

    #[test]
    fn euler_computes_roughly_half_of_ns() {
        let g = Grid::paper();
        let ns = step_workload(Regime::NavierStokes, &g, g.nx).compute_flops();
        let eu = step_workload(Regime::Euler, &g, g.nx).compute_flops();
        let ratio = eu as f64 / ns as f64;
        // the paper's Table 1 ratio is 77/145 = 0.53
        assert!(ratio > 0.4 && ratio < 0.75, "ratio {ratio}");
    }

    #[test]
    fn compute_scales_linearly_with_columns() {
        let g = Grid::paper();
        let a = step_workload(Regime::NavierStokes, &g, 100).compute_flops();
        let b = step_workload(Regime::NavierStokes, &g, 200).compute_flops();
        let rel = (b as f64 - 2.0 * a as f64).abs() / b as f64;
        assert!(rel < 1e-12, "linear in nxl");
    }

    #[test]
    fn v6_workload_fuses_labels_but_not_flops_or_protocol() {
        use crate::config::Version;
        let g = Grid::paper();
        let v5 = step_workload_versioned(Regime::NavierStokes, &g, 16, Version::V5);
        let v6 = step_workload_versioned(Regime::NavierStokes, &g, 16, Version::V6);
        assert_eq!(v5, step_workload(Regime::NavierStokes, &g, 16));
        assert_eq!(v5.compute_flops(), v6.compute_flops());
        assert_eq!(v5.startups_per_step(2), v6.startups_per_step(2));
        assert_eq!(v5.ops.len(), v6.ops.len());
        let labels: Vec<&str> = v6
            .ops
            .iter()
            .filter_map(|op| match op {
                PhaseOp::Compute { label, .. } => Some(*label),
                _ => None,
            })
            .collect();
        assert!(labels.contains(&"r:fused") && labels.contains(&"x:fused2"));
        assert!(!labels.iter().any(|l| l.contains("prims") || l.ends_with("flux") || l.ends_with("flux2")));
        // the predictor/corrector phases keep their names
        assert!(labels.contains(&"x:predict") && labels.contains(&"r:correct"));
    }

    #[test]
    fn edge_rank_sends_half_of_interior_rank() {
        let w = step_workload(Regime::NavierStokes, &Grid::paper(), 16);
        assert_eq!(w.bytes_sent_per_step(1) * 2, w.bytes_sent_per_step(2));
    }
}
