//! Point probes and spectral analysis of time-accurate solutions.
//!
//! The paper's application exists to compute *time-accurate* near-field jet
//! data for aeroacoustics (Section 1: the radiated sound is obtained from
//! the near field via acoustic analogy). This module records primitive-state
//! time series at probe points and provides a plain DFT so the response at
//! the excitation Strouhal number can be measured — the physics payoff the
//! performance study exists to enable.

use crate::field::Field;
use ns_numerics::{gas::Primitive, GasModel};
use serde::{Deserialize, Serialize};

/// A probe location (nearest grid point to the requested coordinates).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProbePoint {
    /// Axial index.
    pub i: usize,
    /// Radial index.
    pub j: usize,
    /// Actual coordinates of the grid point.
    pub x: f64,
    /// Radial coordinate.
    pub r: f64,
}

/// Time series recorded at one probe.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ProbeSeries {
    /// Sample times.
    pub t: Vec<f64>,
    /// Pressure samples.
    pub p: Vec<f64>,
    /// Axial-velocity samples.
    pub u: Vec<f64>,
    /// Radial-velocity samples.
    pub v: Vec<f64>,
}

/// A set of probes attached to a (serial) solver run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ProbeArray {
    /// Probe locations.
    pub points: Vec<ProbePoint>,
    /// One series per probe.
    pub series: Vec<ProbeSeries>,
}

impl ProbeArray {
    /// Place probes at the nearest grid points to `(x, r)` coordinates.
    pub fn new(field: &Field, coords: &[(f64, f64)]) -> Self {
        let grid = &field.patch.grid;
        let points: Vec<ProbePoint> = coords
            .iter()
            .map(|&(x, r)| {
                let i = ((x / grid.dx).round() as usize).min(grid.nx - 1);
                let j = ((r / grid.dr - 0.5).round().max(0.0) as usize).min(grid.nr - 1);
                ProbePoint { i, j, x: grid.x(i), r: grid.r(j) }
            })
            .collect();
        let series = vec![ProbeSeries::default(); points.len()];
        Self { points, series }
    }

    /// Record the current state at every probe.
    pub fn sample(&mut self, field: &Field, gas: &GasModel, t: f64) {
        for (pt, s) in self.points.iter().zip(&mut self.series) {
            let w: Primitive = field.primitive(pt.i, pt.j, gas);
            s.t.push(t);
            s.p.push(w.p);
            s.u.push(w.u);
            s.v.push(w.v);
        }
    }

    /// Number of samples recorded so far.
    pub fn len(&self) -> usize {
        self.series.first().map_or(0, |s| s.t.len())
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One bin of a single-sided amplitude spectrum.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpectrumBin {
    /// Ordinary frequency (cycles per time unit).
    pub frequency: f64,
    /// Amplitude of the mean-removed signal at this frequency.
    pub amplitude: f64,
}

/// Plain single-sided DFT amplitude spectrum of a uniformly sampled,
/// mean-removed signal. O(n^2) — probe series are short.
pub fn amplitude_spectrum(t: &[f64], x: &[f64]) -> Vec<SpectrumBin> {
    assert_eq!(t.len(), x.len());
    let n = x.len();
    if n < 4 {
        return Vec::new();
    }
    let dt = (t[n - 1] - t[0]) / (n as f64 - 1.0);
    let mean = x.iter().sum::<f64>() / n as f64;
    let mut bins = Vec::with_capacity(n / 2);
    for k in 1..n / 2 {
        let omega = 2.0 * std::f64::consts::PI * k as f64 / (n as f64 * dt);
        let (mut re, mut im) = (0.0, 0.0);
        for (m, &xm) in x.iter().enumerate() {
            let ph = omega * m as f64 * dt;
            re += (xm - mean) * ph.cos();
            im -= (xm - mean) * ph.sin();
        }
        let amp = 2.0 * (re * re + im * im).sqrt() / n as f64;
        bins.push(SpectrumBin { frequency: k as f64 / (n as f64 * dt), amplitude: amp });
    }
    bins
}

/// The spectrum's dominant bin.
pub fn dominant_frequency(bins: &[SpectrumBin]) -> Option<SpectrumBin> {
    bins.iter().cloned().max_by(|a, b| a.amplitude.partial_cmp(&b.amplitude).unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Regime, SolverConfig};
    use crate::driver::Solver;
    use ns_numerics::Grid;

    #[test]
    fn spectrum_recovers_a_pure_tone() {
        let n = 256;
        let dt = 0.05;
        let f0 = 10.0 / (n as f64 * dt); // bin-aligned: no leakage
        let t: Vec<f64> = (0..n).map(|k| k as f64 * dt).collect();
        let x: Vec<f64> = t.iter().map(|&tt| 3.0 + 0.7 * (2.0 * std::f64::consts::PI * f0 * tt).sin()).collect();
        let bins = amplitude_spectrum(&t, &x);
        let peak = dominant_frequency(&bins).unwrap();
        assert!((peak.frequency - f0).abs() < 1.0 / (n as f64 * dt) * 1.5, "peak at {}", peak.frequency);
        assert!((peak.amplitude - 0.7).abs() < 0.1, "amplitude {}", peak.amplitude);
    }

    #[test]
    fn spectrum_of_two_tones_ranks_them() {
        let n = 512;
        let dt = 0.02;
        let t: Vec<f64> = (0..n).map(|k| k as f64 * dt).collect();
        let x: Vec<f64> = t
            .iter()
            .map(|&tt| {
                let w = 2.0 * std::f64::consts::PI;
                1.0 * (w * 0.5 * tt).sin() + 0.3 * (w * 2.0 * tt).sin()
            })
            .collect();
        let bins = amplitude_spectrum(&t, &x);
        let peak = dominant_frequency(&bins).unwrap();
        assert!((peak.frequency - 0.5).abs() < 0.1);
    }

    #[test]
    fn probes_snap_to_grid_points() {
        let cfg = SolverConfig::paper(Grid::small(), Regime::Euler);
        let s = Solver::new(cfg);
        let probes = ProbeArray::new(&s.field, &[(10.0, 1.0), (0.0, 0.0), (1000.0, 1000.0)]);
        assert_eq!(probes.points.len(), 3);
        // out-of-range coordinates clamp to the grid
        assert_eq!(probes.points[2].i, s.field.patch.grid.nx - 1);
        assert_eq!(probes.points[2].j, s.field.patch.grid.nr - 1);
        let p0 = probes.points[0];
        assert!((p0.x - 10.0).abs() <= s.field.patch.grid.dx);
        assert!((p0.r - 1.0).abs() <= s.field.patch.grid.dr);
    }

    /// The excited jet's near field must respond at the forcing frequency:
    /// the pressure spectrum at a shear-layer probe peaks at (or within a
    /// bin of) the excitation frequency. This closes the loop on the paper's
    /// aeroacoustic motivation.
    #[test]
    fn excited_jet_responds_at_the_forcing_frequency() {
        let grid = Grid::new(80, 24, 50.0, 5.0);
        let mut cfg = SolverConfig::paper(grid, Regime::Euler);
        // this coarse grid needs the optional smoothing to survive several
        // forcing periods of the M = 1.5 jet (see `dissipation`)
        cfg.dissipation = 0.002;
        let omega = cfg.excitation.omega(cfg.jet.u_c);
        let f_force = omega / (2.0 * std::f64::consts::PI);
        let mut s = Solver::new(cfg);
        let mut probes = ProbeArray::new(&s.field, &[(3.0, 1.0)]);
        let gas = *s.gas();
        let period = 1.0 / f_force;
        // let the startup transient wash past the probe, then sample six
        // forcing periods
        let warmup = (2.0 * period / s.dt()).ceil() as u64;
        s.run(warmup);
        let steps = (6.0 * period / s.dt()).ceil() as u64;
        for _ in 0..steps {
            s.step();
            probes.sample(&s.field, &gas, s.t);
        }
        assert!(s.healthy());
        let series = &probes.series[0];
        let bins = amplitude_spectrum(&series.t, &series.p);
        let peak = dominant_frequency(&bins).unwrap();
        let resolution = 1.0 / (series.t.last().unwrap() - series.t[0]);
        assert!(
            (peak.frequency - f_force).abs() < 2.0 * resolution,
            "pressure peak at {} vs forcing {f_force} (resolution {resolution})",
            peak.frequency
        );
    }
}
