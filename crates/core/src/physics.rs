//! Pointwise physics: axisymmetric Stokes stresses, Fourier heat flux, and
//! the paper's flux vectors.
//!
//! The governing equations (paper Section 2), in cylindrical polar
//! coordinates with `Q = r q`:
//!
//! ```text
//! dQ/dt + dF/dx + dG/dr = S
//! F = r (rho u,  rho u^2 + p - txx,  rho u v - txr,  rho u H - u txx - v txr - k T_x)
//! G = r (rho v,  rho u v - txr,  rho v^2 + p - trr,  rho v H - u txr - v trr - k T_r)
//! S =   (0, 0, p - t_theta_theta, 0)
//! ```
//!
//! with `rho H = E + p`. The Euler equations are obtained by zeroing the
//! transport coefficients.

use ns_numerics::GasModel;

/// Velocity/temperature gradients at a point.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Derivs {
    /// du/dx
    pub ux: f64,
    /// du/dr
    pub ur: f64,
    /// dv/dx
    pub vx: f64,
    /// dv/dr
    pub vr: f64,
    /// dT/dx
    pub tx: f64,
    /// dT/dr
    pub tr: f64,
}

/// Axisymmetric viscous stresses and heat fluxes at a point.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Stresses {
    /// Axial normal stress.
    pub txx: f64,
    /// Radial normal stress.
    pub trr: f64,
    /// Azimuthal normal stress (enters the source term).
    pub ttt: f64,
    /// Shear stress.
    pub txr: f64,
    /// Axial heat flux `-k dT/dx`.
    pub qx: f64,
    /// Radial heat flux `-k dT/dr`.
    pub qr: f64,
}

/// Compute the axisymmetric Stokes stresses with bulk-viscosity closure
/// `lambda = -2/3 mu`, where the divergence is
/// `div u = u_x + v_r + v / r`.
#[inline(always)]
pub fn stresses(gas: &GasModel, d: &Derivs, v_over_r: f64) -> Stresses {
    let mu = gas.mu;
    let div = d.ux + d.vr + v_over_r;
    let lam_div = -(2.0 / 3.0) * mu * div;
    Stresses {
        txx: 2.0 * mu * d.ux + lam_div,
        trr: 2.0 * mu * d.vr + lam_div,
        ttt: 2.0 * mu * v_over_r + lam_div,
        txr: mu * (d.ur + d.vx),
        qx: -gas.kappa * d.tx,
        qr: -gas.kappa * d.tr,
    }
}

/// Unweighted axial flux `f` (multiply by `r` for the paper's `F`).
#[inline(always)]
pub fn xflux(rho: f64, u: f64, v: f64, p: f64, e: f64, s: &Stresses) -> [f64; 4] {
    let m = rho * u;
    [m, m * u + p - s.txx, m * v - s.txr, (e + p) * u - u * s.txx - v * s.txr + s.qx]
}

/// Unweighted radial flux `g` (multiply by `r` for the paper's `G`).
#[inline(always)]
pub fn rflux(rho: f64, u: f64, v: f64, p: f64, e: f64, s: &Stresses) -> [f64; 4] {
    let n = rho * v;
    [n, n * u - s.txr, n * v + p - s.trr, (e + p) * v - u * s.txr - v * s.trr + s.qr]
}

/// The radial source term `S = (0, 0, p - t_theta_theta, 0)`; only the third
/// component is nonzero, returned as a scalar.
#[inline(always)]
pub fn source3(p: f64, s: &Stresses) -> f64 {
    p - s.ttt
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gas() -> GasModel {
        GasModel::air(1000.0, 1.5) // exaggerated viscosity for visible stresses
    }

    #[test]
    fn stress_trace_has_no_bulk_viscosity() {
        // txx + trr + ttt = 2 mu div + 3 lam div = (2 - 2) mu div = 0
        let g = gas();
        let d = Derivs { ux: 0.3, ur: -0.1, vx: 0.2, vr: 0.4, tx: 0.0, tr: 0.0 };
        let v_over_r = 0.25;
        let s = stresses(&g, &d, v_over_r);
        assert!((s.txx + s.trr + s.ttt).abs() < 1e-15);
    }

    #[test]
    fn shear_stress_symmetric_part_only() {
        let g = gas();
        let d = Derivs { ur: 0.7, vx: -0.2, ..Default::default() };
        let s = stresses(&g, &d, 0.0);
        assert!((s.txr - g.mu * 0.5).abs() < 1e-15);
    }

    #[test]
    fn heat_flux_opposes_gradient() {
        let g = gas();
        let d = Derivs { tx: 2.0, tr: -1.0, ..Default::default() };
        let s = stresses(&g, &d, 0.0);
        assert!(s.qx < 0.0 && s.qr > 0.0);
        assert!((s.qx + g.kappa * 2.0).abs() < 1e-15);
    }

    #[test]
    fn inviscid_fluxes_reduce_to_euler() {
        let g = gas().inviscid();
        let d = Derivs { ux: 1.0, ur: 1.0, vx: 1.0, vr: 1.0, tx: 1.0, tr: 1.0 };
        let s = stresses(&g, &d, 1.0);
        assert_eq!(s, Stresses::default());
        let (rho, u, v, p) = (1.2, 0.9, 0.3, 0.8);
        let e = g.total_energy(rho, u, v, p);
        let f = xflux(rho, u, v, p, e, &s);
        assert!((f[0] - rho * u).abs() < 1e-15);
        assert!((f[1] - (rho * u * u + p)).abs() < 1e-15);
        assert!((f[2] - rho * u * v).abs() < 1e-15);
        assert!((f[3] - (e + p) * u).abs() < 1e-15);
    }

    #[test]
    fn source_is_pressure_minus_hoop_stress() {
        let g = gas();
        let d = Derivs::default();
        let s = stresses(&g, &d, 0.5);
        let src = source3(2.0, &s);
        assert!((src - (2.0 - s.ttt)).abs() < 1e-15);
        assert!(s.ttt != 0.0);
    }

    #[test]
    fn fluxes_are_galilean_consistent_in_mass() {
        // mass flux components must be exactly momentum densities
        let g = gas();
        let s = Stresses::default();
        let e = g.total_energy(2.0, 3.0, 4.0, 1.0);
        assert_eq!(xflux(2.0, 3.0, 4.0, 1.0, e, &s)[0], 6.0);
        assert_eq!(rflux(2.0, 3.0, 4.0, 1.0, e, &s)[0], 8.0);
    }
}
