//! Solution and work fields with ghost layers.
//!
//! The solver state is the paper's radially weighted conservative vector
//! `Q = r (rho, rho u, rho v, E)` stored as four structure-of-arrays planes
//! with [`NG`] ghost layers on every side. A [`Patch`] describes which axial
//! slab of the global grid a field covers, so the same containers serve the
//! serial solver (one patch = whole grid) and the distributed solver (one
//! patch per rank, axial block decomposition only — the decomposition the
//! paper chose after experimentation).

use ns_numerics::{gas::Primitive, Array2, GasModel, Grid};
use serde::{Deserialize, Serialize};

/// Number of ghost layers on each side (the 2-4 stencil reaches +-2).
pub const NG: usize = 2;

/// A rectangular pencil `[i0, i0 + nxl) x [j0, j0 + nrl)` of the global
/// grid. The paper's axial slabs are the `j0 = 0, nrl = grid.nr` special
/// case; the 2-D decomposition splits both directions.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Patch {
    /// The global grid this patch belongs to.
    pub grid: Grid,
    /// Global index of the first owned axial column.
    pub i0: usize,
    /// Number of owned axial columns.
    pub nxl: usize,
    /// Global index of the first owned radial row.
    pub j0: usize,
    /// Number of owned radial rows.
    pub nrl: usize,
}

/// The `rank`-th of `size` even blocks over `n` cells: `(start, len)` with
/// the remainder spread over the leading ranks (the standard block rule).
#[inline]
fn block_1d(n: usize, rank: usize, size: usize) -> (usize, usize) {
    let base = n / size;
    let rem = n % size;
    (rank * base + rank.min(rem), base + usize::from(rank < rem))
}

impl Patch {
    /// A patch covering the entire grid (serial solver).
    pub fn whole(grid: Grid) -> Self {
        let nxl = grid.nx;
        let nrl = grid.nr;
        Self { grid, i0: 0, nxl, j0: 0, nrl }
    }

    /// The `rank`-th of `size` axial blocks, sized as evenly as possible
    /// (remainder spread over the leading ranks, the standard block rule).
    pub fn block(grid: Grid, rank: usize, size: usize) -> Self {
        assert!(size >= 1 && rank < size);
        Self::pencil(grid, (rank, 0), (size, 1))
    }

    /// The `(cx, cr)` pencil of a `px x pr` Cartesian split: axial block
    /// `cx` of `px` crossed with radial block `cr` of `pr`, both sized by
    /// the same remainder-spreading rule as [`Patch::block`].
    pub fn pencil(grid: Grid, coords: (usize, usize), dims: (usize, usize)) -> Self {
        let ((cx, cr), (px, pr)) = (coords, dims);
        assert!(px >= 1 && pr >= 1 && cx < px && cr < pr);
        let (i0, nxl) = block_1d(grid.nx, cx, px);
        let (j0, nrl) = block_1d(grid.nr, cr, pr);
        Self { grid, i0, nxl, j0, nrl }
    }

    /// Axial coordinate of local column `i`.
    #[inline(always)]
    pub fn x(&self, i: usize) -> f64 {
        self.grid.x(self.i0 + i)
    }

    /// Radial coordinate of local row `j`.
    #[inline(always)]
    pub fn r(&self, j: usize) -> f64 {
        self.grid.r(self.j0 + j)
    }

    /// Radial coordinate for a signed local row index. At the global axis
    /// ghosts mirror across it (`r_{-1} = -r_0`); an interior pencil's
    /// bottom ghosts are real rows of the neighbour below.
    #[inline(always)]
    pub fn r_signed(&self, j: isize) -> f64 {
        self.grid.r_signed(self.j0 as isize + j)
    }

    /// Number of owned radial rows.
    #[inline(always)]
    pub fn nr(&self) -> usize {
        self.nrl
    }

    /// Does this patch own the global inflow boundary?
    #[inline(always)]
    pub fn is_global_left(&self) -> bool {
        self.i0 == 0
    }

    /// Does this patch own the global outflow boundary?
    #[inline(always)]
    pub fn is_global_right(&self) -> bool {
        self.i0 + self.nxl == self.grid.nx
    }

    /// Does this patch own the jet axis (the bottom radial boundary)?
    #[inline(always)]
    pub fn is_global_bottom(&self) -> bool {
        self.j0 == 0
    }

    /// Does this patch own the far-field row (the top radial boundary)?
    #[inline(always)]
    pub fn is_global_top(&self) -> bool {
        self.j0 + self.nrl == self.grid.nr
    }
}

/// Map a signed local index (ghosts at negative indices) to array index.
#[inline(always)]
pub fn gi(i: isize) -> usize {
    (i + NG as isize) as usize
}

/// Four-component conservative field `Q = r q` with ghost layers.
#[derive(Clone, Debug)]
pub struct Field {
    /// Component planes, each `(nxl + 2 NG) x (nr + 2 NG)`.
    pub q: [Array2; 4],
    /// The axial slab this field covers.
    pub patch: Patch,
}

impl Field {
    /// Zero-initialized field over `patch`.
    pub fn zeros(patch: Patch) -> Self {
        let ni = patch.nxl + 2 * NG;
        let nj = patch.nr() + 2 * NG;
        Self { q: std::array::from_fn(|_| Array2::zeros(ni, nj)), patch }
    }

    /// Build a field from a primitive-state function of `(x, r)`.
    pub fn from_primitives(patch: Patch, gas: &GasModel, mut f: impl FnMut(f64, f64) -> Primitive) -> Self {
        let mut fld = Self::zeros(patch);
        for i in 0..fld.patch.nxl {
            let x = fld.patch.x(i);
            for j in 0..fld.patch.nr() {
                let r = fld.patch.r(j);
                let w = f(x, r);
                fld.set_primitive(i, j, gas, &w);
            }
        }
        fld
    }

    /// Number of owned axial columns.
    #[inline(always)]
    pub fn nxl(&self) -> usize {
        self.patch.nxl
    }

    /// Number of radial points.
    #[inline(always)]
    pub fn nr(&self) -> usize {
        self.patch.nr()
    }

    /// Read component `c` at signed local `(i, j)` (ghosts allowed).
    #[inline(always)]
    pub fn at(&self, c: usize, i: isize, j: isize) -> f64 {
        self.q[c].at(gi(i), gi(j))
    }

    /// Write component `c` at signed local `(i, j)` (ghosts allowed).
    #[inline(always)]
    pub fn set(&mut self, c: usize, i: isize, j: isize, v: f64) {
        self.q[c].set(gi(i), gi(j), v);
    }

    /// Conservative (r-weighted) vector at interior point `(i, j)`.
    #[inline(always)]
    pub fn qvec(&self, i: usize, j: usize) -> [f64; 4] {
        let (ii, jj) = (i + NG, j + NG);
        [self.q[0].at(ii, jj), self.q[1].at(ii, jj), self.q[2].at(ii, jj), self.q[3].at(ii, jj)]
    }

    /// Store a conservative (r-weighted) vector at interior point `(i, j)`.
    #[inline(always)]
    pub fn set_qvec(&mut self, i: usize, j: usize, q: [f64; 4]) {
        let (ii, jj) = (i + NG, j + NG);
        for c in 0..4 {
            self.q[c].set(ii, jj, q[c]);
        }
    }

    /// Un-weighted conservative vector `(rho, rho u, rho v, E)` at `(i, j)`.
    #[inline(always)]
    pub fn qvec_unweighted(&self, i: usize, j: usize) -> [f64; 4] {
        let inv_r = 1.0 / self.patch.r(j);
        let q = self.qvec(i, j);
        [q[0] * inv_r, q[1] * inv_r, q[2] * inv_r, q[3] * inv_r]
    }

    /// Primitive state at interior point `(i, j)`.
    #[inline(always)]
    pub fn primitive(&self, i: usize, j: usize, gas: &GasModel) -> Primitive {
        Primitive::from_conservative(self.qvec_unweighted(i, j), gas)
    }

    /// Set interior point `(i, j)` from a primitive state (applies the `r`
    /// weighting).
    #[inline(always)]
    pub fn set_primitive(&mut self, i: usize, j: usize, gas: &GasModel, w: &Primitive) {
        let r = self.patch.r(j);
        let q = w.to_conservative(gas);
        self.set_qvec(i, j, [r * q[0], r * q[1], r * q[2], r * q[3]]);
    }

    /// Extract an interior plane of some derived quantity.
    pub fn map_interior(&self, gas: &GasModel, mut f: impl FnMut(&Primitive) -> f64) -> Array2 {
        Array2::from_fn(self.nxl(), self.nr(), |i, j| f(&self.primitive(i, j, gas)))
    }

    /// Volume-weighted integral of component `c` over the interior
    /// (`integral Q_c dx dr`; because `Q` carries the `r` weight this is the
    /// true axisymmetric volume integral up to `2 pi`).
    pub fn integral(&self, c: usize) -> f64 {
        let mut s = 0.0;
        for i in 0..self.nxl() {
            for j in 0..self.nr() {
                s += self.at(c, i as isize, j as isize);
            }
        }
        s * self.patch.grid.dx * self.patch.grid.dr
    }

    /// True if every interior value is finite.
    pub fn interior_finite(&self) -> bool {
        for c in 0..4 {
            for i in 0..self.nxl() {
                for j in 0..self.nr() {
                    if !self.at(c, i as isize, j as isize).is_finite() {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Max absolute interior difference to another same-shape field.
    pub fn max_diff(&self, other: &Field) -> f64 {
        assert_eq!(self.nxl(), other.nxl());
        assert_eq!(self.nr(), other.nr());
        let mut m = 0.0_f64;
        for c in 0..4 {
            for i in 0..self.nxl() {
                for j in 0..self.nr() {
                    m = m.max((self.at(c, i as isize, j as isize) - other.at(c, i as isize, j as isize)).abs());
                }
            }
        }
        m
    }
}

/// Primitive-variable work planes (same ghosted shape as [`Field`]).
#[derive(Clone, Debug)]
pub struct PrimField {
    /// Density.
    pub rho: Array2,
    /// Axial velocity.
    pub u: Array2,
    /// Radial velocity.
    pub v: Array2,
    /// Pressure.
    pub p: Array2,
    /// Temperature.
    pub t: Array2,
}

impl PrimField {
    /// Zero-initialized primitive planes for `patch`.
    pub fn zeros(patch: &Patch) -> Self {
        let ni = patch.nxl + 2 * NG;
        let nj = patch.nr() + 2 * NG;
        Self {
            rho: Array2::zeros(ni, nj),
            u: Array2::zeros(ni, nj),
            v: Array2::zeros(ni, nj),
            p: Array2::zeros(ni, nj),
            t: Array2::zeros(ni, nj),
        }
    }
}

/// Four-component flux planes (same ghosted shape as [`Field`]).
#[derive(Clone, Debug)]
pub struct FluxField {
    /// Component planes.
    pub c: [Array2; 4],
}

impl FluxField {
    /// Zero-initialized flux planes for `patch`.
    pub fn zeros(patch: &Patch) -> Self {
        let ni = patch.nxl + 2 * NG;
        let nj = patch.nr() + 2 * NG;
        Self { c: std::array::from_fn(|_| Array2::zeros(ni, nj)) }
    }

    /// Read component `c` at signed `(i, j)`.
    #[inline(always)]
    pub fn at(&self, c: usize, i: isize, j: isize) -> f64 {
        self.c[c].at(gi(i), gi(j))
    }

    /// Write component `c` at signed `(i, j)`.
    #[inline(always)]
    pub fn set(&mut self, c: usize, i: isize, j: isize, v: f64) {
        self.c[c].set(gi(i), gi(j), v);
    }
}

/// Scratch space reused across steps: primitive planes for the base and
/// predictor states, flux planes, the predictor field, and the radial
/// source plane.
#[derive(Clone, Debug)]
pub struct Workspace {
    /// Primitives of the current stage state.
    pub prim: PrimField,
    /// Flux planes (F for x-sweeps, G for r-sweeps).
    pub flux: FluxField,
    /// Predictor-stage fluxes.
    pub flux_bar: FluxField,
    /// Predictor state.
    pub qbar: Field,
    /// Radial source `S_3 = p - tau_theta_theta` (interior only).
    pub src: Array2,
    /// Predictor-stage source.
    pub src_bar: Array2,
    /// Phase profiler threaded through the operators (off by default, so
    /// the uninstrumented path pays one branch per phase boundary).
    pub timers: ns_telemetry::PhaseTimer,
    /// Manufactured-solution forcing planes, populated by the driver when
    /// `SolverConfig::mms` is set and `None` for production runs (the
    /// operators take the unforced code path without touching them).
    pub mms: Option<Box<crate::mms::MmsSources>>,
    /// V7 SoA sweep workspace, armed lazily by the first V7 fused sweep and
    /// `None` for every other version (see [`crate::soa`]).
    pub soa: Option<Box<crate::soa::SoaWs>>,
}

impl Workspace {
    /// Allocate all scratch planes for `patch`.
    pub fn new(patch: &Patch) -> Self {
        Self {
            prim: PrimField::zeros(patch),
            flux: FluxField::zeros(patch),
            flux_bar: FluxField::zeros(patch),
            qbar: Field::zeros(patch.clone()),
            src: Array2::zeros(patch.nxl + 2 * NG, patch.nr() + 2 * NG),
            src_bar: Array2::zeros(patch.nxl + 2 * NG, patch.nr() + 2 * NG),
            timers: ns_telemetry::PhaseTimer::default(),
            mms: None,
            soa: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gas() -> GasModel {
        GasModel::air(1.2e6, 1.5)
    }

    #[test]
    fn block_decomposition_covers_grid_disjointly() {
        let grid = Grid::paper();
        for size in [1, 2, 3, 5, 7, 16] {
            let mut next = 0;
            for rank in 0..size {
                let p = Patch::block(grid.clone(), rank, size);
                assert_eq!(p.i0, next, "rank {rank} of {size}");
                assert!(p.nxl >= grid.nx / size);
                next = p.i0 + p.nxl;
            }
            assert_eq!(next, grid.nx, "size {size} covers the grid");
        }
    }

    #[test]
    fn block_sizes_differ_by_at_most_one() {
        let grid = Grid::paper();
        for size in [3, 7, 11, 16] {
            let sizes: Vec<_> = (0..size).map(|r| Patch::block(grid.clone(), r, size).nxl).collect();
            let mn = *sizes.iter().min().unwrap();
            let mx = *sizes.iter().max().unwrap();
            assert!(mx - mn <= 1, "{sizes:?}");
        }
    }

    #[test]
    fn global_boundary_flags() {
        let grid = Grid::paper();
        let p0 = Patch::block(grid.clone(), 0, 4);
        let p3 = Patch::block(grid.clone(), 3, 4);
        let p1 = Patch::block(grid.clone(), 1, 4);
        assert!(p0.is_global_left() && !p0.is_global_right());
        assert!(!p3.is_global_left() && p3.is_global_right());
        assert!(!p1.is_global_left() && !p1.is_global_right());
        let w = Patch::whole(grid);
        assert!(w.is_global_left() && w.is_global_right());
    }

    #[test]
    fn primitive_roundtrip_through_r_weighting() {
        let patch = Patch::whole(Grid::small());
        let g = gas();
        let mut f = Field::zeros(patch);
        let w = Primitive { rho: 1.3, u: 0.7, v: -0.1, p: 0.6 };
        f.set_primitive(3, 5, &g, &w);
        let w2 = f.primitive(3, 5, &g);
        assert!((w.rho - w2.rho).abs() < 1e-13);
        assert!((w.p - w2.p).abs() < 1e-13);
        // the stored Q really is r-weighted
        let r = f.patch.r(5);
        assert!((f.at(0, 3, 5) - r * w.rho).abs() < 1e-13);
    }

    #[test]
    fn ghost_indexing_is_offset_by_ng() {
        let patch = Patch::whole(Grid::small());
        let mut f = Field::zeros(patch);
        f.set(0, -2, -2, 42.0);
        assert_eq!(f.q[0].at(0, 0), 42.0);
        f.set(0, 0, 0, 7.0);
        assert_eq!(f.q[0].at(NG, NG), 7.0);
    }

    #[test]
    fn integral_of_uniform_density() {
        let grid = Grid::small();
        let g = gas();
        let f = Field::from_primitives(Patch::whole(grid.clone()), &g, |_, _| Primitive {
            rho: 1.0,
            u: 0.0,
            v: 0.0,
            p: g.pressure(1.0, 1.0),
        });
        // integral of r dr dx over the staggered cells = dx*dr * sum r_j * nx
        let expected: f64 = (0..grid.nr).map(|j| grid.r(j)).sum::<f64>() * grid.nx as f64 * grid.dx * grid.dr;
        assert!((f.integral(0) - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn max_diff_detects_perturbation() {
        let patch = Patch::whole(Grid::small());
        let g = gas();
        let mk = || Field::from_primitives(patch.clone(), &g, |_, _| Primitive { rho: 1.0, u: 0.1, v: 0.0, p: 0.7 });
        let a = mk();
        let mut b = mk();
        assert_eq!(a.max_diff(&b), 0.0);
        let old = b.at(3, 4, 4);
        b.set(3, 4, 4, old + 1e-3);
        assert!((a.max_diff(&b) - 1e-3).abs() < 1e-15);
    }
}
