//! Optional fourth-difference artificial dissipation.
//!
//! The 2-4 MacCormack scheme has only the dissipation built into its
//! one-sided differences; the paper adds none. Long excited-jet runs at
//! `M_c = 1.5` eventually steepen, so we provide a conventional explicit
//! fourth-difference smoother for the flow-physics examples. It is **off**
//! (`dissipation = 0`) in every performance experiment and is only available
//! in the serial driver (the parallel drivers assert it is disabled, since
//! the paper's message protocol carries no smoothing halo).

use crate::bc::Q_PARITY;
use crate::field::Field;
use crate::opcount::{self, FlopLedger};

/// Apply one explicit smoothing pass `Q <- Q - eps D4(Q')` with the
/// fourth-difference operator in both directions, where `Q'` is the
/// *fluctuation* `Q - Q_base` when a base field is supplied.
///
/// Smoothing the raw state erodes the tanh shear layer itself while the
/// Dirichlet inflow keeps re-imposing the sharp profile — the growing
/// axial mismatch destabilizes the inlet region within a few hundred
/// steps. Smoothing the fluctuation about the initial (parallel-jet) base
/// flow preserves the mean exactly and damps only what the excitation and
/// rollup create, which is precisely what the long Figure 1 run needs.
/// Radial ghosts use the axis parity mirror; the axial stencil is
/// restricted to columns with a full interior stencil.
pub fn apply_about(field: &mut Field, base: Option<&Field>, eps: f64, ledger: &mut FlopLedger) {
    if eps == 0.0 {
        return;
    }
    assert!(eps < 1.0 / 16.0, "explicit fourth-difference smoothing requires eps < 1/16");
    let (nxl, nr) = (field.nxl(), field.nr());
    let mut snap = field.clone();
    if let Some(b) = base {
        assert_eq!(b.nxl(), nxl);
        for c in 0..4 {
            for (dst, src) in snap.q[c].as_mut_slice().iter_mut().zip(b.q[c].as_slice()) {
                *dst -= src;
            }
        }
    }
    // mirror radial ghosts of the snapshot so D4 is defined down to j = 0
    for c in 0..4 {
        let s = Q_PARITY[c];
        for i in 0..nxl as isize {
            for g in 0..2_isize {
                snap.set(c, i, -1 - g, s * snap.at(c, i, g));
            }
        }
    }
    // Smoothing is confined to points whose full 5-point stencils are
    // interior: touching the Dirichlet inflow column, the characteristic
    // outflow column, the far-field rows or the axis-mirror closure injects
    // boundary-incompatible perturbations (the mirrored closure in
    // particular is not dissipative for all axis modes) which the
    // low-dissipation 2-4 scheme then amplifies.
    for c in 0..4 {
        for i in 2..nxl.saturating_sub(2) {
            let si = i as isize;
            for j in 2..nr.saturating_sub(3) {
                let sj = j as isize;
                let mut d4 = 0.0;
                // radial stencil (ghosts valid below the axis, interior above)
                d4 += snap.at(c, si, sj - 2) - 4.0 * snap.at(c, si, sj - 1) + 6.0 * snap.at(c, si, sj)
                    - 4.0 * snap.at(c, si, sj + 1)
                    + snap.at(c, si, sj + 2);
                // axial stencil
                d4 += snap.at(c, si - 2, sj) - 4.0 * snap.at(c, si - 1, sj) + 6.0 * snap.at(c, si, sj)
                    - 4.0 * snap.at(c, si + 1, sj)
                    + snap.at(c, si + 2, sj);
                let v = field.at(c, si, sj) - eps * d4;
                field.set(c, si, sj, v);
            }
        }
    }
    ledger.dissipation += (nxl * nr) as u64 * opcount::COST_DISSIPATION;
}

/// Smoothing of the raw state (no base field); see [`apply_about`].
pub fn apply(field: &mut Field, eps: f64, ledger: &mut FlopLedger) {
    apply_about(field, None, eps, ledger);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::Patch;
    use ns_numerics::gas::Primitive;
    use ns_numerics::{GasModel, Grid};

    fn gas() -> GasModel {
        GasModel::air(1.2e6, 1.5)
    }

    #[test]
    fn zero_eps_is_noop() {
        let g = gas();
        let mut f = Field::from_primitives(Patch::whole(Grid::small()), &g, |x, r| Primitive {
            rho: 1.0 + 0.1 * (x + r).sin(),
            u: 0.3,
            v: 0.0,
            p: 0.7,
        });
        let before = f.clone();
        let mut ledger = FlopLedger::default();
        apply(&mut f, 0.0, &mut ledger);
        assert_eq!(f.max_diff(&before), 0.0);
        assert_eq!(ledger.dissipation, 0);
    }

    #[test]
    fn smooths_an_odd_even_mode() {
        // a +-1 checkerboard in j is the highest radial frequency; one pass
        // must reduce its amplitude
        let patch = Patch::whole(Grid::small());
        let mut f = Field::zeros(patch);
        let (nxl, nr) = (f.nxl(), f.nr());
        for i in 0..nxl {
            for j in 0..nr {
                let sgn = if j.is_multiple_of(2) { 1.0 } else { -1.0 };
                f.set(3, i as isize, j as isize, 10.0 + sgn);
            }
        }
        let mut ledger = FlopLedger::default();
        apply(&mut f, 0.01, &mut ledger);
        // measure the oscillation amplitude at an interior point
        let a = f.at(3, 10, 8);
        let b = f.at(3, 10, 9);
        assert!((a - b).abs() < 2.0, "checkerboard must be damped, got {}", (a - b).abs());
        assert!(ledger.dissipation > 0);
    }

    #[test]
    fn preserves_smooth_fields_to_high_order() {
        // D4 of a cubic is exactly zero: smooth fields are untouched where
        // the full stencil applies
        let patch = Patch::whole(Grid::small());
        let mut f = Field::zeros(patch);
        let (nxl, nr) = (f.nxl(), f.nr());
        for c in 0..4 {
            for i in 0..nxl {
                for j in 0..nr {
                    let x = i as f64;
                    f.set(c, i as isize, j as isize, 1.0 + 0.01 * x + 0.001 * x * x);
                }
            }
        }
        let before = f.clone();
        let mut ledger = FlopLedger::default();
        apply(&mut f, 0.02, &mut ledger);
        // columns with full axial stencils and rows away from the axis
        for i in 4..nxl - 4 {
            for j in 4..nr - 4 {
                let d = (f.at(0, i as isize, j as isize) - before.at(0, i as isize, j as isize)).abs();
                assert!(d < 1e-12, "({i},{j}) changed by {d}");
            }
        }
    }

    #[test]
    #[should_panic]
    fn rejects_unstable_eps() {
        let g = gas();
        let mut f = Field::from_primitives(Patch::whole(Grid::small()), &g, |_, _| Primitive {
            rho: 1.0,
            u: 0.0,
            v: 0.0,
            p: 0.7,
        });
        let mut ledger = FlopLedger::default();
        apply(&mut f, 0.5, &mut ledger);
    }
}
