//! Checkpoint / restart.
//!
//! The paper's production runs took "many hours of CPU time on the Cray
//! Y-MP"; any code of that class needs restart files. A checkpoint captures
//! everything the time stepper depends on — configuration, clock, step
//! parity (which selects the `L1`/`L2` operator variant), the conservative
//! field and the instrumentation — so a restored run continues **bitwise
//! identically**, which the tests assert.

use crate::config::SolverConfig;
use crate::driver::Solver;
use crate::field::{Field, Patch, Workspace};
use crate::opcount::FlopLedger;
use ns_numerics::Array2;
use serde::{Deserialize, Serialize};

/// A self-contained snapshot of a (serial) solver.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version for forward compatibility.
    pub format: u32,
    /// Full solver configuration.
    pub cfg: SolverConfig,
    /// Physical time.
    pub t: f64,
    /// Completed steps (parity selects the next operator variant).
    pub nstep: u64,
    /// FLOP ledger.
    pub ledger: FlopLedger,
    /// The patch the field covers.
    pub patch: Patch,
    /// Conservative component planes (including ghosts).
    pub q: [Array2; 4],
}

/// Errors from checkpoint (de)serialization.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying JSON error.
    Json(serde_json::Error),
    /// Unsupported format version.
    BadFormat(u32),
    /// Checkpoint is inconsistent (shape mismatch etc.).
    Corrupt(&'static str),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Json(e) => write!(f, "checkpoint JSON error: {e}"),
            CheckpointError::BadFormat(v) => write!(f, "unsupported checkpoint format {v}"),
            CheckpointError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<serde_json::Error> for CheckpointError {
    fn from(e: serde_json::Error) -> Self {
        CheckpointError::Json(e)
    }
}

/// Current checkpoint format version.
pub const FORMAT: u32 = 1;

impl Checkpoint {
    /// Capture a solver's state.
    pub fn capture(solver: &Solver) -> Self {
        Self {
            format: FORMAT,
            cfg: solver.cfg.clone(),
            t: solver.t,
            nstep: solver.nstep,
            ledger: solver.ledger,
            patch: solver.field.patch.clone(),
            q: solver.field.q.clone(),
        }
    }

    /// Serialize to JSON bytes.
    pub fn to_bytes(&self) -> Result<Vec<u8>, CheckpointError> {
        Ok(serde_json::to_vec(self)?)
    }

    /// Deserialize from JSON bytes with validation.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let cp: Checkpoint = serde_json::from_slice(bytes)?;
        if cp.format != FORMAT {
            return Err(CheckpointError::BadFormat(cp.format));
        }
        let expect_ni = cp.patch.nxl + 2 * crate::field::NG;
        let expect_nj = cp.patch.nr() + 2 * crate::field::NG;
        for plane in &cp.q {
            if plane.ni() != expect_ni || plane.nj() != expect_nj {
                return Err(CheckpointError::Corrupt("field plane shape does not match the patch"));
            }
            if !plane.all_finite() {
                return Err(CheckpointError::Corrupt("non-finite state"));
            }
        }
        if cp.patch.grid != cp.cfg.grid {
            return Err(CheckpointError::Corrupt("patch grid does not match the configuration"));
        }
        Ok(cp)
    }

    /// Rebuild a solver that continues exactly where the captured one was.
    pub fn restore(self) -> Solver {
        let field = Field { q: self.q, patch: self.patch };
        let ws = Workspace::new(&field.patch);
        Solver::from_parts(self.cfg, field, ws, self.t, self.nstep, self.ledger)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Regime, SolverConfig};
    use ns_numerics::Grid;

    fn solver() -> Solver {
        Solver::new(SolverConfig::paper(Grid::small(), Regime::NavierStokes))
    }

    #[test]
    fn roundtrip_is_bitwise() {
        let mut s = solver();
        s.run(5);
        let cp = Checkpoint::capture(&s);
        let bytes = cp.to_bytes().unwrap();
        let restored = Checkpoint::from_bytes(&bytes).unwrap().restore();
        assert_eq!(restored.t, s.t);
        assert_eq!(restored.nstep, s.nstep);
        assert_eq!(restored.ledger, s.ledger);
        assert_eq!(restored.field.max_diff(&s.field), 0.0);
    }

    #[test]
    fn restored_run_continues_identically() {
        // run 5 + 7 steps in one go vs checkpoint at 5 and continue
        let mut reference = solver();
        reference.run(12);

        let mut first = solver();
        first.run(5);
        let bytes = Checkpoint::capture(&first).to_bytes().unwrap();
        let mut resumed = Checkpoint::from_bytes(&bytes).unwrap().restore();
        resumed.run(7);

        assert_eq!(resumed.nstep, reference.nstep);
        assert_eq!(resumed.field.max_diff(&reference.field), 0.0, "restart must be bitwise transparent");
    }

    #[test]
    fn odd_step_parity_is_preserved() {
        // checkpoint at an odd step: the next operator variant must be L2's,
        // which only happens if nstep survives the roundtrip
        let mut a = solver();
        a.run(3);
        let mut b = Checkpoint::capture(&a)
            .to_bytes()
            .and_then(|v| Checkpoint::from_bytes(&v))
            .map(Checkpoint::restore)
            .unwrap();
        a.run(1);
        b.run(1);
        assert_eq!(a.field.max_diff(&b.field), 0.0);
    }

    #[test]
    fn corrupt_checkpoints_are_rejected() {
        let s = solver();
        let mut cp = Checkpoint::capture(&s);
        cp.format = 99;
        let bytes = serde_json::to_vec(&cp).unwrap();
        assert!(matches!(Checkpoint::from_bytes(&bytes), Err(CheckpointError::BadFormat(99))));

        let mut cp = Checkpoint::capture(&s);
        cp.q[2] = Array2::zeros(3, 3);
        let bytes = serde_json::to_vec(&cp).unwrap();
        assert!(matches!(Checkpoint::from_bytes(&bytes), Err(CheckpointError::Corrupt(_))));

        // non-finite state: JSON itself cannot carry NaN (serde_json emits
        // null), so the rejection surfaces at the parse layer — either way,
        // a NaN-bearing checkpoint never restores
        let mut cp = Checkpoint::capture(&s);
        cp.q[0].set(5, 5, f64::NAN);
        let bytes = serde_json::to_vec(&cp).unwrap();
        assert!(Checkpoint::from_bytes(&bytes).is_err());

        assert!(Checkpoint::from_bytes(b"not json").is_err());
    }
}
