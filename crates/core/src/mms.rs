//! Method of Manufactured Solutions (MMS) support.
//!
//! The MMS turns the solver into its own accuracy instrument: pick a smooth
//! analytic state `q*(x, r)`, inject the forcing that makes `q*` an exact
//! steady solution of the governing equations, start the solver *at* `q*`,
//! and measure how fast the discrete solution drifts away under grid
//! refinement. The drift is pure truncation error, so the observed decay
//! rate is the scheme's real convergence order (the 2-4 scheme's headline
//! fourth order in the interior).
//!
//! Two properties of the design matter for a clean order measurement:
//!
//! * **Per-operator forcing.** The scheme is dimensionally split, so a
//!   single combined source `R = dF*/dx + dG*/dr - S*` would leave each
//!   split operator with an O(dt) splitting transient even at the exact
//!   solution. Instead the axial operator receives `R_x = dF*/dx` and the
//!   radial operator receives `R_r = dG*/dr - S*`, which makes `q*` a fixed
//!   point of *each* operator separately up to its own truncation error.
//! * **Exact axis parity.** The manufactured primitives are exactly even in
//!   `r` (functions of `r^2`) except `v = r · f(r^2) · g(x)`, which is
//!   exactly odd — so the mirror ghost fill across the axis is *exact*, and
//!   the axis contributes no boundary error to the measurement.
//!
//! The forcing terms are the analytic flux divergences evaluated by
//! high-order (8th) central numerical differentiation of the closed-form
//! flux functions with a step independent of the grid, so their error
//! (~1e-13) sits far below any truncation error being measured. Sources are
//! precomputed once per patch into [`MmsSources`] and injected by the
//! predictor/corrector updates in `scheme`.
//!
//! Boundary treatment under MMS (see `scheme`/`driver`): the inflow column
//! is Dirichlet `q*`, the outflow column and far-field row are frozen at
//! `q*` (the characteristic outflow and far-field extrapolation are
//! replaced — they model physics the manufactured state does not satisfy),
//! and the axis keeps its mirror fill, which is exact here.

use crate::field::{Field, Patch, NG};
use crate::physics::{self, Derivs, Stresses};
use ns_numerics::{gas::Primitive, Array2, GasModel};
use serde::{Deserialize, Serialize};

/// Parameters of the manufactured solution.
///
/// The state is a smooth subsonic perturbation of a uniform stream:
///
/// ```text
/// rho = rho0 (1 + a_rho sin(kx x) cos(kr r^2))
/// u   = u0 + a_u cos(kx x) cos(kr r^2)
/// v   = a_v r^3 exp(-kr r^2) cos(kx x)
/// p   = p0 (1 + a_p cos(kx x) cos(kr r^2))
/// ```
///
/// `rho`, `u`, `p` depend on `r` only through `r^2` (exactly even); `v` is
/// an odd function of `r`.
///
/// The `r^3` leading behaviour of `v` (rather than the generic `r`) is
/// load-bearing. Near the axis every `r`-weighted radial flux is locally
/// `G ~ G''(0) r^2 / 2` (the fluxes are even with `G(0) = 0` forced by the
/// `r` weight), so the true derivative being differenced is only `O(h)` on
/// the first rows while the one-sided 2-4 predictor truncation `(h/3) G''`
/// is `O(h) G''(0)` — an `O(1)` *relative* error wherever `G''(0) != 0`.
/// The resulting un-weighted state perturbation scales like
/// `dt G''(0) / r`, i.e. an `O(dt)` kick to the first row that the
/// opposite-sided corrector cannot cancel (it differences the *perturbed*
/// flux), and the measured order collapses to one. With `v = O(r^3)`:
/// `G_0 = r rho v = O(r^4)`, `G_1 = r rho u v = O(r^4)`,
/// `G_3 = r v (E + p) = O(r^4)` and `G_2 = r (rho v^2 + p) = r p + O(r^7)`
/// with `p` even, so `G''(0) = 0` for every component and the axis is as
/// benign as it is for the physical jet (where `v` also vanishes fast and
/// the near-axis radial flux is carried by the even pressure).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MmsSpec {
    /// Base density.
    pub rho0: f64,
    /// Density perturbation amplitude.
    pub a_rho: f64,
    /// Base axial velocity.
    pub u0: f64,
    /// Axial velocity perturbation amplitude.
    pub a_u: f64,
    /// Radial velocity amplitude (per unit `r^3`).
    pub a_v: f64,
    /// Base pressure.
    pub p0: f64,
    /// Pressure perturbation amplitude (relative).
    pub a_p: f64,
    /// Axial wavenumber.
    pub kx: f64,
    /// Radial wavenumber (applied to `r^2`).
    pub kr: f64,
}

impl MmsSpec {
    /// The standard verification state: gentle (few-percent) perturbations,
    /// everywhere subsonic, positive density and pressure, wavelengths
    /// resolved by ~25 points on the coarsest sweep grid.
    pub fn standard() -> Self {
        Self { rho0: 1.0, a_rho: 0.05, u0: 0.5, a_u: 0.08, a_v: 0.01, p0: 1.0 / 1.4, a_p: 0.03, kx: 0.25, kr: 0.1 }
    }

    /// Manufactured primitive state at `(x, r)`. Valid for signed `r`
    /// (ghost rows): the even/odd parity is inherent in the formulas.
    pub fn primitive(&self, x: f64, r: f64) -> Primitive {
        let cx = (self.kx * x).cos();
        let sx = (self.kx * x).sin();
        let r2 = r * r;
        let cr = (self.kr * r2).cos();
        Primitive {
            rho: self.rho0 * (1.0 + self.a_rho * sx * cr),
            u: self.u0 + self.a_u * cx * cr,
            v: self.a_v * r2 * r * (-self.kr * r2).exp() * cx,
            p: self.p0 * (1.0 + self.a_p * cx * cr),
        }
    }

    /// `v / r` in closed form (finite on the axis, where `v -> 0`).
    pub fn v_over_r(&self, x: f64, r: f64) -> f64 {
        self.a_v * r * r * (-self.kr * r * r).exp() * (self.kx * x).cos()
    }

    /// Velocity/temperature gradients of the manufactured state, by
    /// high-order numerical differentiation of the closed forms.
    fn derivs(&self, gas: &GasModel, x: f64, r: f64) -> Derivs {
        let temp = |x: f64, r: f64| {
            let w = self.primitive(x, r);
            gas.temperature(w.rho, w.p)
        };
        Derivs {
            ux: diff8(|s| self.primitive(s, r).u, x),
            ur: diff8(|s| self.primitive(x, s).u, r),
            vx: diff8(|s| self.primitive(s, r).v, x),
            vr: diff8(|s| self.primitive(x, s).v, r),
            tx: diff8(|s| temp(s, r), x),
            tr: diff8(|s| temp(x, s), r),
        }
    }

    /// Viscous stresses of the manufactured state (zero for inviscid gas).
    fn stresses_at(&self, gas: &GasModel, x: f64, r: f64) -> Stresses {
        if gas.is_inviscid() {
            return Stresses::default();
        }
        physics::stresses(gas, &self.derivs(gas, x, r), self.v_over_r(x, r))
    }

    /// `r`-weighted axial flux `F = r f(q*)` at `(x, r)`.
    pub fn xflux_weighted(&self, gas: &GasModel, x: f64, r: f64) -> [f64; 4] {
        let w = self.primitive(x, r);
        let e = gas.total_energy(w.rho, w.u, w.v, w.p);
        let s = self.stresses_at(gas, x, r);
        let f = physics::xflux(w.rho, w.u, w.v, w.p, e, &s);
        [r * f[0], r * f[1], r * f[2], r * f[3]]
    }

    /// `r`-weighted radial flux `G = r g(q*)` at `(x, r)`.
    pub fn rflux_weighted(&self, gas: &GasModel, x: f64, r: f64) -> [f64; 4] {
        let w = self.primitive(x, r);
        let e = gas.total_energy(w.rho, w.u, w.v, w.p);
        let s = self.stresses_at(gas, x, r);
        let g = physics::rflux(w.rho, w.u, w.v, w.p, e, &s);
        [r * g[0], r * g[1], r * g[2], r * g[3]]
    }

    /// The radial source `S_3 = p - tau_theta_theta` at `(x, r)`.
    pub fn source3(&self, gas: &GasModel, x: f64, r: f64) -> f64 {
        let w = self.primitive(x, r);
        physics::source3(w.p, &self.stresses_at(gas, x, r))
    }
}

/// Step for the 8th-order difference: small enough that `(k h)^8` is far
/// below truncation scales, large enough that f64 rounding (`eps / h`)
/// stays near 1e-14 even after one nesting (viscous source terms).
const DIFF_H: f64 = 0.05;

/// 8th-order central first derivative with step [`DIFF_H`].
fn diff8(f: impl Fn(f64) -> f64, x: f64) -> f64 {
    const C: [f64; 4] = [4.0 / 5.0, -1.0 / 5.0, 4.0 / 105.0, -1.0 / 280.0];
    let mut s = 0.0;
    for (k, c) in C.iter().enumerate() {
        let kh = (k as f64 + 1.0) * DIFF_H;
        s += c * (f(x + kh) - f(x - kh));
    }
    s / DIFF_H
}

/// Component-wise [`diff8`] of a 4-vector function.
fn diff8_vec(f: impl Fn(f64) -> [f64; 4], x: f64) -> [f64; 4] {
    const C: [f64; 4] = [4.0 / 5.0, -1.0 / 5.0, 4.0 / 105.0, -1.0 / 280.0];
    let mut out = [0.0; 4];
    for (k, c) in C.iter().enumerate() {
        let kh = (k as f64 + 1.0) * DIFF_H;
        let fp = f(x + kh);
        let fm = f(x - kh);
        for m in 0..4 {
            out[m] += c * (fp[m] - fm[m]);
        }
    }
    for v in &mut out {
        *v /= DIFF_H;
    }
    out
}

/// Precomputed per-patch MMS forcing planes, indexed like the workspace
/// source plane (interior point `(i, j)` at array `(i + NG, j + NG)`).
#[derive(Clone, Debug)]
pub struct MmsSources {
    /// Axial-operator forcing `R_x = dF*/dx` (r-weighted).
    pub sx: [Array2; 4],
    /// Radial-operator forcing `R_r = dG*/dr - S*` (r-weighted flux,
    /// unweighted source, matching the discrete operator's convention).
    pub sr: [Array2; 4],
}

/// Compute the forcing planes for one patch.
pub fn sources(spec: &MmsSpec, patch: &Patch, gas: &GasModel) -> MmsSources {
    let ni = patch.nxl + 2 * NG;
    let nj = patch.nr() + 2 * NG;
    let mut sx: [Array2; 4] = std::array::from_fn(|_| Array2::zeros(ni, nj));
    let mut sr: [Array2; 4] = std::array::from_fn(|_| Array2::zeros(ni, nj));
    for i in 0..patch.nxl {
        let x = patch.x(i);
        for j in 0..patch.nr() {
            let r = patch.r(j);
            let rx = diff8_vec(|s| spec.xflux_weighted(gas, s, r), x);
            let mut rr = diff8_vec(|s| spec.rflux_weighted(gas, x, s), r);
            rr[2] -= spec.source3(gas, x, r);
            for c in 0..4 {
                sx[c].set(i + NG, j + NG, rx[c]);
                sr[c].set(i + NG, j + NG, rr[c]);
            }
        }
    }
    MmsSources { sx, sr }
}

/// The exact manufactured field on a patch.
pub fn exact_field(spec: &MmsSpec, patch: Patch, gas: &GasModel) -> Field {
    Field::from_primitives(patch, gas, |x, r| spec.primitive(x, r))
}

/// Impose the manufactured state on local column `i` (the MMS replacement
/// for the jet inflow Dirichlet data).
pub fn dirichlet_column(field: &mut Field, spec: &MmsSpec, gas: &GasModel, i: usize) {
    let x = field.patch.x(i);
    for j in 0..field.patch.nr() {
        let r = field.patch.r(j);
        field.set_primitive(i, j, gas, &spec.primitive(x, r));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ns_numerics::Grid;

    fn gas() -> GasModel {
        GasModel::air(1.2e6, 1.5)
    }

    #[test]
    fn parity_is_exact() {
        let spec = MmsSpec::standard();
        for &(x, r) in &[(3.0, 0.2), (17.5, 1.7), (42.0, 4.9)] {
            let a = spec.primitive(x, r);
            let b = spec.primitive(x, -r);
            assert_eq!(a.rho, b.rho);
            assert_eq!(a.u, b.u);
            assert_eq!(a.p, b.p);
            assert_eq!(a.v, -b.v);
        }
    }

    #[test]
    fn diff8_is_spectrally_accurate_on_trig() {
        let d = diff8(|s| (0.3 * s).sin(), 0.7);
        assert!((d - 0.3 * (0.3 * 0.7_f64).cos()).abs() < 1e-12);
    }

    #[test]
    fn uniform_spec_has_zero_sources() {
        // With all perturbation amplitudes zero the state is a uniform
        // stream: F is constant in x and dG_3/dr = d(r p)/dr = p = S_3, so
        // both forcing planes must vanish (to differentiation accuracy).
        let spec = MmsSpec { a_rho: 0.0, a_u: 0.0, a_v: 0.0, a_p: 0.0, ..MmsSpec::standard() };
        let patch = Patch::whole(Grid::small());
        for g in [gas(), gas().inviscid()] {
            let s = sources(&spec, &patch, &g);
            for c in 0..4 {
                for i in 0..patch.nxl {
                    for j in 0..patch.nr() {
                        assert!(s.sx[c].at(i + NG, j + NG).abs() < 1e-11, "sx[{c}] at ({i},{j})");
                        assert!(s.sr[c].at(i + NG, j + NG).abs() < 1e-11, "sr[{c}] at ({i},{j})");
                    }
                }
            }
        }
    }

    #[test]
    fn v_over_r_matches_v_divided_by_r() {
        let spec = MmsSpec::standard();
        let w = spec.primitive(12.0, 2.5);
        assert!((spec.v_over_r(12.0, 2.5) - w.v / 2.5).abs() < 1e-15);
    }

    #[test]
    fn sources_have_differentiation_level_consistency() {
        // dF/dx of the *mass* component is r d(rho u)/dx, available in
        // closed form; the numerical differentiation must match it tightly.
        let spec = MmsSpec::standard();
        let g = gas().inviscid();
        let (x, r) = (11.0, 1.3);
        let rx = diff8_vec(|s| spec.xflux_weighted(&g, s, r), x);
        // d(rho u)/dx analytic
        let kx = spec.kx;
        let cr = (spec.kr * r * r).cos();
        let rho = |x: f64| spec.rho0 * (1.0 + spec.a_rho * (kx * x).sin() * cr);
        let u = |x: f64| spec.u0 + spec.a_u * (kx * x).cos() * cr;
        let drho = spec.rho0 * spec.a_rho * kx * (kx * x).cos() * cr;
        let du = -spec.a_u * kx * (kx * x).sin() * cr;
        let exact = r * (drho * u(x) + rho(x) * du);
        assert!((rx[0] - exact).abs() < 1e-11, "{} vs {exact}", rx[0]);
    }
}
