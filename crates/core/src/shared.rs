//! Shared-memory parallel driver — the analogue of the paper's Cray Y-MP
//! parallelization.
//!
//! On the Y-MP the paper "did some hand optimization to convert some loops
//! to parallel loops, used the DOALL directive, and partitioned the domain
//! along the orthogonal direction of the sweep". The Rust analogue is Rayon:
//! the hot per-row loops become `par_iter` loops over disjoint row bands, so
//! every worker sweeps stride-1 data, and each phase is a fork-join region
//! exactly like a DOALL loop nest.
//!
//! This driver parallelizes the dominant phases (primitive recovery, flux
//! evaluation, predictor/corrector updates) using the V5 kernel arithmetic;
//! boundary fills stay serial (they are O(N) against the O(N^2) interior).
//! Results are bitwise identical to the serial V5 solver — row partitioning
//! changes no arithmetic — which the tests assert.

use crate::bc;
use crate::config::SolverConfig;
use crate::field::{Field, FluxField, Patch, PrimField, Workspace, NG};
use crate::kernels::{EdgeFlags, FluxDir};
use crate::opcount::{self, FlopLedger};
use crate::physics;
use crate::scheme::Variant;
use ns_numerics::{Array2, GasModel};
use rayon::prelude::*;

/// Shared-memory solver over the whole grid with a dedicated Rayon pool.
pub struct SharedSolver {
    /// Configuration (version is forced to V5 — the paper parallelized its
    /// fully optimized code).
    pub cfg: SolverConfig,
    gas: GasModel,
    /// Current solution.
    pub field: Field,
    ws: Workspace,
    /// Physical time.
    pub t: f64,
    /// Completed steps.
    pub nstep: u64,
    /// FLOP ledger.
    pub ledger: FlopLedger,
    dt: f64,
    pool: rayon::ThreadPool,
}

impl SharedSolver {
    /// Create a shared-memory solver with `threads` workers.
    pub fn new(mut cfg: SolverConfig, threads: usize) -> Self {
        cfg.version = crate::config::Version::V5;
        assert!(cfg.mms.is_none(), "MMS verification runs use the serial or distributed drivers");
        assert_eq!(cfg.dissipation, 0.0, "dissipation is a serial-only feature");
        assert_eq!(
            cfg.scheme,
            crate::config::SchemeOrder::TwoFour,
            "the parallel drivers implement the paper's 2-4 scheme"
        );
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("rayon pool");
        let gas = cfg.effective_gas();
        let patch = Patch::whole(cfg.grid.clone());
        let mut field = crate::driver::initial_field(&cfg, patch);
        let ws = Workspace::new(&field.patch);
        let dt = cfg.time_step();
        let mut ledger = FlopLedger::default();
        bc::apply_inflow(&mut field, &cfg, &gas, 0.0, &mut ledger);
        Self { cfg, gas, field, ws, t: 0.0, nstep: 0, ledger, dt, pool }
    }

    /// Effective gas model.
    pub fn gas(&self) -> &GasModel {
        &self.gas
    }

    /// The fixed time step.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Advance one step (same operator ordering as the serial driver).
    pub fn step(&mut self) {
        let cfg = self.cfg.clone();
        if cfg.adaptive_dt {
            let wave = crate::diag::max_wave_speed(&self.field, &self.gas);
            self.dt = cfg.cfl * cfg.grid.dx.min(cfg.grid.dr) / wave;
            self.ledger.boundary += (self.field.nxl() * self.field.nr()) as u64 * 6;
        }
        let dt = self.dt;
        let t = self.t;
        let even = self.nstep.is_multiple_of(2);
        let Self { gas, field, ws, ledger, pool, .. } = self;
        pool.install(|| {
            if even {
                par_r_operator(Variant::L1, field, ws, &cfg, gas, dt, ledger);
                par_x_operator(Variant::L1, field, ws, &cfg, gas, t, dt, ledger);
            } else {
                par_x_operator(Variant::L2, field, ws, &cfg, gas, t, dt, ledger);
                par_r_operator(Variant::L2, field, ws, &cfg, gas, dt, ledger);
            }
            bc::apply_inflow(field, &cfg, gas, t + dt, ledger);
            bc::axis_regularize(field, gas, ledger);
        });
        self.t += dt;
        self.nstep += 1;
    }

    /// Advance `n` steps.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }
}

/// Collect the interior row band `(raw index, row slice)` of a plane.
fn band(a: &mut Array2, nxl: usize) -> Vec<(usize, &mut [f64])> {
    let nj = a.nj();
    a.as_mut_slice().chunks_mut(nj).enumerate().skip(NG).take(nxl).collect()
}

/// Parallel primitive recovery (row bands over the axial index); identical
/// arithmetic to the serial V5 kernel.
fn par_prims(field: &Field, prim: &mut PrimField, gas: &GasModel, ledger: &mut FlopLedger) {
    let (nxl, nr) = (field.nxl(), field.nr());
    let gm1 = gas.gamma - 1.0;
    let inv_rgas = 1.0 / gas.r_gas;
    let inv_r: Vec<f64> = (0..nr).map(|j| 1.0 / field.patch.r(j)).collect();

    let mut rho_rows = band(&mut prim.rho, nxl);
    let mut u_rows = band(&mut prim.u, nxl);
    let mut v_rows = band(&mut prim.v, nxl);
    let mut p_rows = band(&mut prim.p, nxl);
    let mut t_rows = band(&mut prim.t, nxl);

    rho_rows
        .par_iter_mut()
        .zip(u_rows.par_iter_mut())
        .zip(v_rows.par_iter_mut())
        .zip(p_rows.par_iter_mut())
        .zip(t_rows.par_iter_mut())
        .for_each(|(((((ii, rho_r), (_, u_r)), (_, v_r)), (_, p_r)), (_, t_r))| {
            let ii = *ii;
            let q0 = field.q[0].row(ii);
            let q1 = field.q[1].row(ii);
            let q2 = field.q[2].row(ii);
            let q3 = field.q[3].row(ii);
            // pass 1: the same (q * inv_r) products the sliced kernel stores
            for j in 0..nr {
                let jj = j + NG;
                rho_r[jj] = q0[jj] * inv_r[j];
                u_r[jj] = q1[jj] * inv_r[j];
                v_r[jj] = q2[jj] * inv_r[j];
            }
            // pass 2: divide through by rho, recover p and T
            for j in 0..nr {
                let jj = j + NG;
                let rho = q0[jj] * inv_r[j];
                let inv_rho = 1.0 / rho;
                let u = u_r[jj] * inv_rho;
                let v = v_r[jj] * inv_rho;
                let e = q3[jj] * inv_r[j];
                let ke = 0.5 * rho * (u * u + v * v);
                let p = gm1 * (e - ke);
                u_r[jj] = u;
                v_r[jj] = v;
                p_r[jj] = p;
                t_r[jj] = p * inv_rho * inv_rgas;
            }
        });
    ledger.prims += (nxl * nr) as u64 * opcount::COST_PRIMS;
}

/// Compute one flux row (V5 arithmetic) into four output row slices.
#[allow(clippy::too_many_arguments)]
fn flux_row(
    dir: FluxDir,
    prim: &PrimField,
    patch: &Patch,
    edges: EdgeFlags,
    gas: &GasModel,
    r_of: &[f64],
    inv_r: &[f64],
    ii: usize,
    out: [&mut [f64]; 4],
    mut src_row: Option<&mut [f64]>,
) {
    let (nxl, nr) = (patch.nxl, patch.nr());
    let i = ii - NG;
    let inv_2dx = 1.0 / (2.0 * patch.grid.dx);
    let inv_2dr = 1.0 / (2.0 * patch.grid.dr);
    let inv_gm1 = 1.0 / (gas.gamma - 1.0);
    let viscous = !gas.is_inviscid();
    let [o0, o1, o2, o3] = out;
    let (cl, cm, cr, wl, wm, wr);
    if i == 0 && edges.left {
        (cl, cm, cr) = (ii, ii + 1, ii + 2);
        (wl, wm, wr) = (-3.0 * inv_2dx, 4.0 * inv_2dx, -inv_2dx);
    } else if i == nxl - 1 && edges.right {
        (cl, cm, cr) = (ii - 2, ii - 1, ii);
        (wl, wm, wr) = (inv_2dx, -4.0 * inv_2dx, 3.0 * inv_2dx);
    } else {
        (cl, cm, cr) = (ii - 1, ii, ii + 1);
        (wl, wm, wr) = (-inv_2dx, 0.0, inv_2dx);
    }
    let (u0, v0, t0) = (prim.u.row(ii), prim.v.row(ii), prim.t.row(ii));
    let (rho0, p0) = (prim.rho.row(ii), prim.p.row(ii));
    let (u_l, u_m, u_r) = (prim.u.row(cl), prim.u.row(cm), prim.u.row(cr));
    let (v_l, v_m, v_r) = (prim.v.row(cl), prim.v.row(cm), prim.v.row(cr));
    let (t_l, t_m, t_r) = (prim.t.row(cl), prim.t.row(cm), prim.t.row(cr));
    for j in 0..nr {
        let jj = j + NG;
        let (rho, u, v, p) = (rho0[jj], u0[jj], v0[jj], p0[jj]);
        let s = if viscous {
            let ux = wl * u_l[jj] + wm * u_m[jj] + wr * u_r[jj];
            let vx = wl * v_l[jj] + wm * v_m[jj] + wr * v_r[jj];
            let tx = wl * t_l[jj] + wm * t_m[jj] + wr * t_r[jj];
            let ur = (u0[jj + 1] - u0[jj - 1]) * inv_2dr;
            let vr = (v0[jj + 1] - v0[jj - 1]) * inv_2dr;
            let tr = (t0[jj + 1] - t0[jj - 1]) * inv_2dr;
            let v_over_r = v * inv_r[j];
            let div = ux + vr + v_over_r;
            let lam_div = -(2.0 / 3.0) * gas.mu * div;
            physics::Stresses {
                txx: 2.0 * gas.mu * ux + lam_div,
                trr: 2.0 * gas.mu * vr + lam_div,
                ttt: 2.0 * gas.mu * v_over_r + lam_div,
                txr: gas.mu * (ur + vx),
                qx: -gas.kappa * tx,
                qr: -gas.kappa * tr,
            }
        } else {
            Default::default()
        };
        let e = p * inv_gm1 + 0.5 * rho * (u * u + v * v);
        let f = match dir {
            FluxDir::X => physics::xflux(rho, u, v, p, e, &s),
            FluxDir::R => physics::rflux(rho, u, v, p, e, &s),
        };
        let r = r_of[j];
        o0[jj] = r * f[0];
        o1[jj] = r * f[1];
        o2[jj] = r * f[2];
        o3[jj] = r * f[3];
        if let Some(sr) = src_row.as_deref_mut() {
            sr[jj] = physics::source3(p, &s);
        }
    }
}

/// Parallel flux kernel equivalent to the V5 sliced kernel.
#[allow(clippy::too_many_arguments)]
fn par_flux(
    dir: FluxDir,
    prim: &PrimField,
    patch: &Patch,
    edges: EdgeFlags,
    gas: &GasModel,
    flux: &mut FluxField,
    src: Option<&mut Array2>,
    ledger: &mut FlopLedger,
) {
    let (nxl, nr) = (patch.nxl, patch.nr());
    let r_of: Vec<f64> = (0..nr).map(|j| patch.r(j)).collect();
    let inv_r: Vec<f64> = r_of.iter().map(|&r| 1.0 / r).collect();
    let viscous = !gas.is_inviscid();

    let [c0, c1, c2, c3] = &mut flux.c;
    let mut f0 = band(c0, nxl);
    let mut f1 = band(c1, nxl);
    let mut f2 = band(c2, nxl);
    let mut f3 = band(c3, nxl);

    if let Some(sp) = src {
        let mut srows = band(sp, nxl);
        f0.par_iter_mut()
            .zip(f1.par_iter_mut())
            .zip(f2.par_iter_mut())
            .zip(f3.par_iter_mut())
            .zip(srows.par_iter_mut())
            .for_each(|(((((ii, a), (_, b)), (_, c)), (_, d)), (_, s))| {
                flux_row(dir, prim, patch, edges, gas, &r_of, &inv_r, *ii, [a, b, c, d], Some(s));
            });
    } else {
        f0.par_iter_mut().zip(f1.par_iter_mut()).zip(f2.par_iter_mut()).zip(f3.par_iter_mut()).for_each(
            |((((ii, a), (_, b)), (_, c)), (_, d))| {
                flux_row(dir, prim, patch, edges, gas, &r_of, &inv_r, *ii, [a, b, c, d], None);
            },
        );
    }

    let pts = (nxl * nr) as u64;
    ledger.flux += pts * if viscous { opcount::COST_FLUX_VISCOUS } else { opcount::COST_FLUX_INVISCID };
    if dir == FluxDir::R {
        ledger.source += pts * opcount::COST_SOURCE;
    }
}

/// Parallel x-direction predictor/corrector band update.
#[allow(clippy::too_many_arguments)]
fn par_update_x(
    forward: bool,
    corrector: bool,
    base: &Field,
    qbar_in: Option<&Field>,
    flux: &FluxField,
    out: &mut Field,
    istart: usize,
    iend: usize,
    nr: usize,
    lam: f64,
) {
    let nj = out.q[0].nj();
    for c in 0..4 {
        let fc = &flux.c[c];
        let bq = &base.q[c];
        let pq = qbar_in.map(|f| &f.q[c]);
        let mut rows: Vec<(usize, &mut [f64])> =
            out.q[c].as_mut_slice().chunks_mut(nj).enumerate().skip(NG + istart).take(iend - istart).collect();
        rows.par_iter_mut().for_each(|(ii, row)| {
            let ii = *ii;
            for j in 0..nr {
                let jj = j + NG;
                let d = if forward {
                    7.0 * (fc.at(ii + 1, jj) - fc.at(ii, jj)) - (fc.at(ii + 2, jj) - fc.at(ii + 1, jj))
                } else {
                    7.0 * (fc.at(ii, jj) - fc.at(ii - 1, jj)) - (fc.at(ii - 1, jj) - fc.at(ii - 2, jj))
                };
                row[jj] = if corrector {
                    0.5 * (bq.at(ii, jj) + pq.unwrap().at(ii, jj) - lam * d)
                } else {
                    bq.at(ii, jj) - lam * d
                };
            }
        });
    }
}

/// Parallel r-direction predictor/corrector band update (with source term).
#[allow(clippy::too_many_arguments)]
fn par_update_r(
    forward: bool,
    corrector: bool,
    base: &Field,
    qbar_in: Option<&Field>,
    flux: &FluxField,
    src: &Array2,
    out: &mut Field,
    nxl: usize,
    nr: usize,
    lam: f64,
    dt: f64,
) {
    let nj = out.q[0].nj();
    for c in 0..4 {
        let fc = &flux.c[c];
        let bq = &base.q[c];
        let pq = qbar_in.map(|f| &f.q[c]);
        let mut rows: Vec<(usize, &mut [f64])> =
            out.q[c].as_mut_slice().chunks_mut(nj).enumerate().skip(NG).take(nxl).collect();
        rows.par_iter_mut().for_each(|(ii, row)| {
            let ii = *ii;
            for j in 0..nr - 1 {
                let jj = j + NG;
                let d = if forward {
                    7.0 * (fc.at(ii, jj + 1) - fc.at(ii, jj)) - (fc.at(ii, jj + 2) - fc.at(ii, jj + 1))
                } else {
                    7.0 * (fc.at(ii, jj) - fc.at(ii, jj - 1)) - (fc.at(ii, jj - 1) - fc.at(ii, jj - 2))
                };
                let sc = if c == 2 { dt * src.at(ii, jj) } else { 0.0 };
                row[jj] = if corrector {
                    0.5 * (bq.at(ii, jj) + pq.unwrap().at(ii, jj) - lam * d + sc)
                } else {
                    bq.at(ii, jj) - lam * d + sc
                };
            }
        });
    }
}

/// Parallel axial operator (mirrors `scheme::x_operator`; whole grid only).
#[allow(clippy::too_many_arguments)]
fn par_x_operator(
    variant: Variant,
    field: &mut Field,
    ws: &mut Workspace,
    cfg: &SolverConfig,
    gas: &GasModel,
    t: f64,
    dt: f64,
    ledger: &mut FlopLedger,
) {
    let patch = field.patch.clone();
    let edges = EdgeFlags::of(&patch);
    let (nxl, nr) = (patch.nxl, patch.nr());
    let lam = dt / (6.0 * patch.grid.dx);

    par_prims(field, &mut ws.prim, gas, ledger);
    bc::mirror_prims_axis(&mut ws.prim);
    bc::extrap_prims_top(&mut ws.prim, nr);
    par_flux(FluxDir::X, &ws.prim, &patch, edges, gas, &mut ws.flux, None, ledger);
    bc::extrap_flux_x(&mut ws.flux, nxl, nr, edges.left, edges.right, ledger);
    bc::outflow_characteristic(field, &ws.prim, gas, dt, ledger);

    let (istart, iend) = (1, nxl - 1);
    par_update_x(variant == Variant::L1, false, field, None, &ws.flux, &mut ws.qbar, istart, iend, nr, lam);
    ledger.update += ((iend - istart) * nr) as u64 * opcount::COST_PREDICTOR;
    bc::apply_inflow(&mut ws.qbar, cfg, gas, t + dt, ledger);
    for j in 0..nr {
        ws.qbar.set_qvec(nxl - 1, j, field.qvec(nxl - 1, j));
    }

    par_prims(&ws.qbar, &mut ws.prim, gas, ledger);
    bc::mirror_prims_axis(&mut ws.prim);
    bc::extrap_prims_top(&mut ws.prim, nr);
    par_flux(FluxDir::X, &ws.prim, &patch, edges, gas, &mut ws.flux_bar, None, ledger);
    bc::extrap_flux_x(&mut ws.flux_bar, nxl, nr, edges.left, edges.right, ledger);

    // The serial corrector updates in place, reading `field` only at the
    // point it writes; the parallel bands need disjoint mutable access, so
    // stage through a double buffer and swap.
    let mut new_field = field.clone();
    par_update_x(
        variant == Variant::L2,
        true,
        field,
        Some(&ws.qbar),
        &ws.flux_bar,
        &mut new_field,
        istart,
        iend,
        nr,
        lam,
    );
    ledger.update += ((iend - istart) * nr) as u64 * opcount::COST_CORRECTOR;
    std::mem::swap(field, &mut new_field);

    bc::apply_inflow(field, cfg, gas, t + dt, ledger);
}

/// Parallel radial operator (mirrors `scheme::r_operator`).
fn par_r_operator(
    variant: Variant,
    field: &mut Field,
    ws: &mut Workspace,
    cfg: &SolverConfig,
    gas: &GasModel,
    dt: f64,
    ledger: &mut FlopLedger,
) {
    let patch = field.patch.clone();
    // matches scheme::r_operator: local one-sided x-stencils at patch edges
    // (the shared-memory solver always owns the whole radial extent)
    let edges = EdgeFlags { left: true, right: true, bottom: true, top: true };
    let (nxl, nr) = (patch.nxl, patch.nr());
    let lam = dt / (6.0 * patch.grid.dr);

    par_prims(field, &mut ws.prim, gas, ledger);
    bc::mirror_prims_axis(&mut ws.prim);
    bc::extrap_prims_top(&mut ws.prim, nr);
    par_flux(FluxDir::R, &ws.prim, &patch, edges, gas, &mut ws.flux, Some(&mut ws.src), ledger);
    bc::fill_rflux_ghosts(&mut ws.flux, nxl, nr, ledger);

    {
        let Workspace { flux, src, qbar, .. } = ws;
        par_update_r(variant == Variant::L1, false, field, None, flux, src, qbar, nxl, nr, lam, dt);
    }
    ledger.update += (nxl * (nr - 1)) as u64 * (opcount::COST_PREDICTOR + 2);
    for i in 0..nxl {
        ws.qbar.set_qvec(i, nr - 1, field.qvec(i, nr - 1));
    }

    par_prims(&ws.qbar, &mut ws.prim, gas, ledger);
    bc::mirror_prims_axis(&mut ws.prim);
    bc::extrap_prims_top(&mut ws.prim, nr);
    par_flux(FluxDir::R, &ws.prim, &patch, edges, gas, &mut ws.flux_bar, Some(&mut ws.src_bar), ledger);
    bc::fill_rflux_ghosts(&mut ws.flux_bar, nxl, nr, ledger);

    let mut new_field = field.clone();
    {
        let Workspace { flux_bar, src_bar, qbar, .. } = ws;
        par_update_r(
            variant == Variant::L2,
            true,
            field,
            Some(qbar),
            flux_bar,
            src_bar,
            &mut new_field,
            nxl,
            nr,
            lam,
            dt,
        );
    }
    ledger.update += (nxl * (nr - 1)) as u64 * (opcount::COST_CORRECTOR + 2);
    std::mem::swap(field, &mut new_field);

    bc::farfield_top(field, gas, gas.pressure(1.0, cfg.jet.t_c), ledger);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Regime, SolverConfig};
    use crate::driver::Solver;
    use ns_numerics::Grid;

    #[test]
    fn shared_solver_matches_serial_v5_exactly() {
        for regime in [Regime::Euler, Regime::NavierStokes] {
            let cfg = SolverConfig::paper(Grid::small(), regime);
            let mut serial = Solver::new(cfg.clone());
            let mut shared = SharedSolver::new(cfg, 4);
            serial.run(6);
            shared.run(6);
            let d = serial.field.max_diff(&shared.field);
            assert_eq!(d, 0.0, "{regime:?}: shared-memory result must be bitwise identical, diff {d}");
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let cfg = SolverConfig::paper(Grid::small(), Regime::NavierStokes);
        let mut one = SharedSolver::new(cfg.clone(), 1);
        let mut eight = SharedSolver::new(cfg, 8);
        one.run(5);
        eight.run(5);
        assert_eq!(one.field.max_diff(&eight.field), 0.0);
    }

    #[test]
    fn ledger_matches_serial() {
        let cfg = SolverConfig::paper(Grid::small(), Regime::NavierStokes);
        let mut serial = Solver::new(cfg.clone());
        let mut shared = SharedSolver::new(cfg, 2);
        serial.run(3);
        shared.run(3);
        assert_eq!(serial.ledger.prims, shared.ledger.prims);
        assert_eq!(serial.ledger.flux, shared.ledger.flux);
        assert_eq!(serial.ledger.update, shared.ledger.update);
    }
}
