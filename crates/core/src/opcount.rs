//! Floating-point operation accounting (Table 1 / Table 2 inputs).
//!
//! The paper reports total FP operations for the two applications
//! (145e9 for Navier-Stokes, 77e9 for Euler on the 250x100 grid over 5000
//! steps). We count canonical per-point costs of each kernel — the *work the
//! algorithm does*, identical across optimization versions (the paper, too,
//! holds FLOPs fixed across versions and lets only the time vary, which is
//! how a 9.3 -> 16.0 MFLOPS improvement is meaningful).
//!
//! Counting rule: `+ - * /` and `sqrt` each count 1; the per-point constants
//! below are audited against the kernel formulas in `tests`.

use serde::{Deserialize, Serialize};

/// Per-point cost of the primitive-recovery kernel
/// (`q = Q/r`, `1/rho`, `u`, `v`, kinetic energy, `p`, `T`).
pub const COST_PRIMS: u64 = 16;

/// Per-point cost of the six velocity/temperature derivatives
/// (each central difference: one subtraction and one multiply).
pub const COST_DERIVS: u64 = 12;

/// Per-point cost of the stress/heat-flux evaluation
/// (divergence, three normal stresses, shear, two heat fluxes).
pub const COST_STRESS: u64 = 18;

/// Per-point cost of assembling one viscous flux vector and `r`-weighting it.
pub const COST_FLUX_ASSEMBLY_VISCOUS: u64 = 22;

/// Per-point cost of assembling one inviscid flux vector and `r`-weighting it.
pub const COST_FLUX_ASSEMBLY_INVISCID: u64 = 14;

/// Per-point cost of the source term `p - ttt` (1 op; stresses already counted).
pub const COST_SOURCE: u64 = 1;

/// Per-point cost of a predictor update (per 4 components: one-sided
/// difference, scale, add; plus the source add in `r` sweeps).
pub const COST_PREDICTOR: u64 = 24;

/// Per-point cost of a corrector update.
pub const COST_CORRECTOR: u64 = 28;

/// Per-point cost of one fourth-difference dissipation pass (per direction).
pub const COST_DISSIPATION: u64 = 24;

/// Total flux-kernel per-point cost (derivatives + stresses + assembly) for
/// the viscous equations.
pub const COST_FLUX_VISCOUS: u64 = COST_DERIVS + COST_STRESS + COST_FLUX_ASSEMBLY_VISCOUS;

/// Total flux-kernel per-point cost for the Euler equations.
pub const COST_FLUX_INVISCID: u64 = COST_FLUX_ASSEMBLY_INVISCID;

/// Running FLOP ledger, broken down by kernel class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlopLedger {
    /// Primitive recovery.
    pub prims: u64,
    /// Flux evaluation (derivatives + stresses + assembly).
    pub flux: u64,
    /// Source-term evaluation.
    pub source: u64,
    /// Predictor/corrector updates.
    pub update: u64,
    /// Boundary-condition work (characteristic solves, extrapolations).
    pub boundary: u64,
    /// Artificial dissipation.
    pub dissipation: u64,
}

impl FlopLedger {
    /// Total FP operations recorded.
    pub fn total(&self) -> u64 {
        self.prims + self.flux + self.source + self.update + self.boundary + self.dissipation
    }

    /// Merge another ledger into this one (used to aggregate ranks).
    pub fn merge(&mut self, other: &FlopLedger) {
        self.prims += other.prims;
        self.flux += other.flux;
        self.source += other.source;
        self.update += other.update;
        self.boundary += other.boundary;
        self.dissipation += other.dissipation;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Audit `COST_PRIMS` against the kernel formulas:
    /// 4 ops for `q_c / r` (or `q_c * inv_r`), 1 for `1/rho`, 1 each for `u`
    /// and `v`, 3 for `u^2 + v^2`, 2 for `ke = 0.5 * rho * s`,
    /// 2 for `p = (g-1)(E - ke)`, 2 for `T = p * inv_rho * inv_rgas`.
    #[test]
    fn audit_prims_cost() {
        assert_eq!(COST_PRIMS, 4 + 1 + 1 + 1 + 3 + 2 + 2 + 2);
    }

    /// Six central differences, each `(a - b) * inv_2h`.
    #[test]
    fn audit_derivs_cost() {
        assert_eq!(COST_DERIVS, 6 * 2);
    }

    /// Stress kernel: `v/r` (1), `div` (2), `lam_div` (2), `txx/trr/ttt`
    /// (3 x 3), `txr` (2), `qx`/`qr` (1 each) = 18.
    #[test]
    fn audit_stress_cost() {
        assert_eq!(COST_STRESS, 1 + 2 + 2 + 9 + 2 + 1 + 1);
    }

    /// Viscous x-flux assembly: `E` recovery (5: p/(g-1) + ke reuse of 0.5
    /// rho s — counted 5), `m = rho u` (1), four components (1 + 3 + 2 + 7),
    /// `r`-weighting (4) minus shared subexpressions -> 22; the inviscid
    /// variant drops the 8 stress subtractions.
    #[test]
    fn audit_flux_assembly_costs() {
        assert_eq!(COST_FLUX_ASSEMBLY_VISCOUS, 5 + 1 + 1 + 3 + 2 + 6 + 4);
        assert_eq!(COST_FLUX_ASSEMBLY_INVISCID, COST_FLUX_ASSEMBLY_VISCOUS - 8);
    }

    /// Predictor: per component the 2-4 one-sided difference is 3 add/sub +
    /// 1 multiply by `7`, one multiply by `lambda`, one add = 6 ops x 4.
    #[test]
    fn audit_update_costs() {
        assert_eq!(COST_PREDICTOR, 4 * 6);
        assert_eq!(COST_CORRECTOR, 4 * 7);
    }

    /// The ledger counts the work the algorithm does, not how the kernels
    /// schedule it: the fused V6 sweep and the SoA/tiled V7 sweep must
    /// account exactly the FLOPs of the V5 two-pass baseline, class by
    /// class, for both regimes.
    #[test]
    fn fused_and_soa_rungs_account_identical_flops() {
        use crate::config::{Regime, SolverConfig, Version};
        for regime in [Regime::Euler, Regime::NavierStokes] {
            let ledger_of = |v: Version| {
                let mut cfg = SolverConfig::paper(ns_numerics::Grid::new(24, 12, 10.0, 2.0), regime);
                cfg.version = v;
                let mut s = crate::Solver::new(cfg);
                s.run(4);
                s.ledger
            };
            let v5 = ledger_of(Version::V5);
            assert_eq!(ledger_of(Version::V6), v5, "{regime:?}: V6 ledger must equal V5");
            assert_eq!(ledger_of(Version::V7), v5, "{regime:?}: V7 ledger must equal V5");
        }
    }

    #[test]
    fn ledger_total_and_merge() {
        let mut a = FlopLedger { prims: 1, flux: 2, source: 3, update: 4, boundary: 5, dissipation: 6 };
        assert_eq!(a.total(), 21);
        let b = a;
        a.merge(&b);
        assert_eq!(a.total(), 42);
        assert_eq!(a.flux, 4);
    }
}
