//! Shared support for the ns-bench benchmark binaries.
//!
//! The criterion-style benches print human-readable `bench ...` lines; this
//! module adds the machine-readable side: a small median-of-samples timing
//! harness ([`MedianBench`]) whose results are merged into a committed JSON
//! file (`BENCH_kernels.json` at the repository root) so the kernel ladder's
//! performance trajectory can be tracked across commits and rendered by
//! `jetns bench-report` (the Figure 2 analogue for this machine).
//!
//! Protocol: each bench binary measures its groups, then calls
//! [`MedianBench::write_merged`], which replaces exactly the groups it owns
//! in the existing file and leaves every other binary's groups untouched.
//! Setting `NS_BENCH_QUICK` (any value) switches to a short measurement
//! budget for CI smoke runs; the file records which mode produced it.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Schema tag written into the JSON file.
pub const SCHEMA: &str = "ns-bench/kernels/v1";

/// One measured data point: the median wall-clock cost of an operation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Benchmark group, e.g. `prims_flux_sweep`.
    pub group: String,
    /// Point id within the group, e.g. `V6/125x50`.
    pub id: String,
    /// Median nanoseconds per iteration across the timed samples.
    pub median_ns: f64,
    /// Iterations folded into each timed sample.
    pub iters: u64,
    /// Number of timed samples the median is taken over.
    pub samples: u64,
    /// Floating-point operations per iteration (from the
    /// `ns_core::opcount::FlopLedger` model), when the operation has a
    /// defined flop count.
    pub flops: Option<f64>,
    /// `flops / median seconds`, in MFLOPS, when `flops` is known.
    pub mflops: Option<f64>,
}

/// The on-disk shape of `BENCH_kernels.json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchFile {
    /// Schema tag ([`SCHEMA`]).
    pub schema: String,
    /// True when the last writer ran in `NS_BENCH_QUICK` mode (short budget,
    /// noisier medians — CI smoke artifacts, not trajectory points).
    pub quick: bool,
    /// All recorded points, grouped by `group` in insertion order.
    pub records: Vec<BenchRecord>,
}

/// Where bench results go: `NS_BENCH_OUT` if set, else `BENCH_kernels.json`
/// at the workspace root.
pub fn output_path() -> PathBuf {
    match std::env::var_os("NS_BENCH_OUT") {
        Some(p) => PathBuf::from(p),
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_kernels.json"),
    }
}

/// Median of a sample set (mean of the middle pair for even counts).
pub fn median(samples: &mut [f64]) -> f64 {
    assert!(!samples.is_empty());
    samples.sort_by(|a, b| a.total_cmp(b));
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        0.5 * (samples[n / 2 - 1] + samples[n / 2])
    }
}

/// One member of a [`MedianBench::measure_interleaved`] group.
pub struct GroupItem<'a> {
    /// Point id within the group, e.g. `V6`.
    pub id: String,
    /// Flops per iteration for MFLOPS derivation, if modeled.
    pub flops: Option<f64>,
    /// The operation under test.
    pub f: Box<dyn FnMut() + 'a>,
}

/// A median-of-samples timing harness that accumulates [`BenchRecord`]s.
///
/// Unlike the criterion shim (single budget, mean-only, print-only), this
/// times a fixed number of multi-iteration samples and keeps the median —
/// robust to the occasional descheduling blip — and remembers the numbers
/// so they can be written to the JSON trajectory file.
pub struct MedianBench {
    quick: bool,
    records: Vec<BenchRecord>,
}

impl MedianBench {
    /// Build a harness, reading `NS_BENCH_QUICK` from the environment.
    pub fn from_env() -> Self {
        Self { quick: std::env::var_os("NS_BENCH_QUICK").is_some(), records: Vec::new() }
    }

    /// Build a harness with an explicit mode (tests).
    pub fn with_mode(quick: bool) -> Self {
        Self { quick, records: Vec::new() }
    }

    /// Is the short CI measurement budget active?
    pub fn quick(&self) -> bool {
        self.quick
    }

    /// Records accumulated so far.
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }

    fn budget(&self) -> (Duration, u64) {
        if self.quick {
            (Duration::from_millis(2), 5)
        } else {
            (Duration::from_millis(10), 21)
        }
    }

    /// Warm up and calibrate: double the batch size until one batch costs
    /// at least a quarter of the per-sample target.
    fn calibrate(f: &mut dyn FnMut(), sample_target: Duration) -> u64 {
        f();
        let mut iters = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            if t0.elapsed() * 4 >= sample_target || iters >= 1 << 20 {
                return iters;
            }
            iters *= 2;
        }
    }

    fn push_record(&mut self, group: &str, id: &str, median_ns: f64, iters: u64, nsamples: u64, flops: Option<f64>) {
        let mflops = flops.map(|fl| fl / (median_ns * 1e-9) / 1e6);
        let tag = format!("{group}/{id}");
        match mflops {
            Some(m) => println!("json-bench {tag:<44} {median_ns:>14.1} ns/iter  {m:>9.1} MFLOPS"),
            None => println!("json-bench {tag:<44} {median_ns:>14.1} ns/iter"),
        }
        self.records.push(BenchRecord {
            group: group.to_string(),
            id: id.to_string(),
            median_ns,
            iters,
            samples: nsamples,
            flops,
            mflops,
        });
    }

    /// Time `f`, record the median ns/iteration under `group`/`id`, and
    /// return it. `flops` is the per-iteration flop count used to derive
    /// MFLOPS (pass `None` for operations without a flop model).
    pub fn measure<F: FnMut()>(&mut self, group: &str, id: &str, flops: Option<f64>, mut f: F) -> f64 {
        let (sample_target, nsamples) = self.budget();
        let iters = Self::calibrate(&mut f, sample_target);
        let mut samples = Vec::with_capacity(nsamples as usize);
        for _ in 0..nsamples {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            samples.push(t0.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
        let median_ns = median(&mut samples);
        self.push_record(group, id, median_ns, iters, nsamples, flops);
        median_ns
    }

    /// Measure several operations as one paired experiment: every sample
    /// round times each member once, cycling through them, so slow drift
    /// (CPU frequency, thermal, a noisy neighbor) lands on all members
    /// equally instead of biasing whichever happened to run last. This is
    /// what makes small (few-percent) deltas between ladder versions
    /// trustworthy. Records land in item order.
    pub fn measure_interleaved(&mut self, group: &str, items: &mut [GroupItem<'_>]) {
        let (sample_target, nsamples) = self.budget();
        let iters: Vec<u64> = items.iter_mut().map(|it| Self::calibrate(&mut it.f, sample_target)).collect();
        let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(nsamples as usize); items.len()];
        for _ in 0..nsamples {
            for (k, it) in items.iter_mut().enumerate() {
                let t0 = Instant::now();
                for _ in 0..iters[k] {
                    (it.f)();
                }
                samples[k].push(t0.elapsed().as_secs_f64() * 1e9 / iters[k] as f64);
            }
        }
        for (k, it) in items.iter().enumerate() {
            let median_ns = median(&mut samples[k]);
            self.push_record(group, &it.id, median_ns, iters[k], nsamples, it.flops);
        }
    }

    /// Merge these records into the JSON file at `path`: groups measured by
    /// this harness replace their previous contents wholesale; groups owned
    /// by other bench binaries are preserved. A missing file starts fresh;
    /// an unreadable, unparsable, or foreign-schema file is an error — the
    /// committed trajectory must never be clobbered because of a typo'd
    /// path or a half-written file.
    pub fn write_merged(&self, path: &std::path::Path) -> std::io::Result<()> {
        use std::io::{Error, ErrorKind};
        let mine: std::collections::BTreeSet<&str> = self.records.iter().map(|r| r.group.as_str()).collect();
        let existing = match std::fs::read_to_string(path) {
            Ok(text) => {
                let file: BenchFile = serde_json::from_str(&text).map_err(|e| {
                    Error::new(
                        ErrorKind::InvalidData,
                        format!("{}: not a bench file ({e}); refusing to overwrite", path.display()),
                    )
                })?;
                if file.schema != SCHEMA {
                    return Err(Error::new(
                        ErrorKind::InvalidData,
                        format!("{}: schema `{}` != `{SCHEMA}`; refusing to overwrite", path.display(), file.schema),
                    ));
                }
                file.records
            }
            Err(e) if e.kind() == ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let mut records: Vec<BenchRecord> = existing.into_iter().filter(|r| !mine.contains(r.group.as_str())).collect();
        records.extend(self.records.iter().cloned());
        let file = BenchFile { schema: SCHEMA.to_string(), quick: self.quick, records };
        let mut text = serde_json::to_string_pretty(&file).expect("bench file serializes");
        text.push('\n');
        std::fs::write(path, text)?;
        println!("json-bench wrote {}", path.display());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_robust_to_outliers() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [1.0, 2.0, 3.0, 1000.0]), 2.5);
        assert_eq!(median(&mut [7.0]), 7.0);
    }

    #[test]
    fn measure_records_positive_time_and_mflops() {
        let mut h = MedianBench::with_mode(true);
        let mut acc = 0.0f64;
        let ns = h.measure("unit", "spin", Some(64.0), || {
            for k in 0..64 {
                acc += (k as f64).sqrt();
            }
            std::hint::black_box(acc);
        });
        assert!(ns > 0.0);
        let r = &h.records()[0];
        assert_eq!((r.group.as_str(), r.id.as_str()), ("unit", "spin"));
        assert_eq!(r.median_ns, ns);
        let m = r.mflops.unwrap();
        assert!((m - 64.0 / (ns * 1e-9) / 1e6).abs() < 1e-9);
    }

    #[test]
    fn write_merged_replaces_own_groups_and_keeps_others() {
        let dir = std::env::temp_dir().join(format!("ns-bench-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_kernels.json");

        let mut a = MedianBench::with_mode(true);
        a.measure("alpha", "x", None, || {
            std::hint::black_box(1u64);
        });
        a.measure("beta", "y", None, || {
            std::hint::black_box(2u64);
        });
        a.write_merged(&path).unwrap();

        // A second harness re-measures `alpha` only: `beta` must survive,
        // and `alpha` must be replaced (one record, the new id).
        let mut b = MedianBench::with_mode(true);
        b.measure("alpha", "z", None, || {
            std::hint::black_box(3u64);
        });
        b.write_merged(&path).unwrap();

        let file: BenchFile = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(file.schema, SCHEMA);
        assert!(file.quick);
        let alphas: Vec<_> = file.records.iter().filter(|r| r.group == "alpha").collect();
        assert_eq!(alphas.len(), 1);
        assert_eq!(alphas[0].id, "z");
        assert!(file.records.iter().any(|r| r.group == "beta" && r.id == "y"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_merged_refuses_to_clobber_a_foreign_file() {
        let dir = std::env::temp_dir().join(format!("ns-bench-foreign-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut h = MedianBench::with_mode(true);
        h.measure("alpha", "x", None, || {
            std::hint::black_box(1u64);
        });

        // not JSON at all
        let garbled = dir.join("garbled.json");
        std::fs::write(&garbled, "not json {").unwrap();
        assert!(h.write_merged(&garbled).is_err());
        assert_eq!(std::fs::read_to_string(&garbled).unwrap(), "not json {", "file left untouched");

        // valid JSON, wrong schema
        let foreign = dir.join("foreign.json");
        std::fs::write(&foreign, r#"{"schema": "someone-elses/v9", "quick": false, "records": []}"#).unwrap();
        let err = h.write_merged(&foreign).unwrap_err();
        assert!(err.to_string().contains("schema"), "{err}");

        // a missing file is fine: first write creates it
        let fresh = dir.join("fresh.json");
        h.write_merged(&fresh).unwrap();
        assert!(fresh.exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
