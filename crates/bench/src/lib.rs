//! ns-bench: Criterion benchmark harness; see the `benches/` directory (one bench per paper table/figure plus microbenchmarks).
