//! Figure 2 regenerator: the single-processor optimization study.
//!
//! Prints (a) the calibrated 1995 RS6000/560 times and (b) the live Rust
//! kernels' measured times per version on this host, then benchmarks one
//! solver step under each version — the host-side Figure 2, measured by
//! Criterion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ns_core::config::{Regime, SolverConfig, Version};
use ns_core::Solver;
use ns_experiments::fig_versions;
use ns_numerics::Grid;

fn bench(c: &mut Criterion) {
    println!("\n{}", fig_versions::simulated_1995().render());
    println!("{}", fig_versions::measured_host(Grid::new(125, 50, 50.0, 5.0), 10).table());

    let mut g = c.benchmark_group("fig02_one_step");
    g.sample_size(20);
    for regime in [Regime::NavierStokes, Regime::Euler] {
        for v in Version::ALL {
            let mut cfg = SolverConfig::paper(Grid::new(125, 50, 50.0, 5.0), regime);
            cfg.version = v;
            g.bench_with_input(BenchmarkId::new(regime.name(), format!("{v:?}")), &cfg, |b, cfg| {
                let mut s = Solver::new(cfg.clone());
                b.iter(|| s.step());
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
