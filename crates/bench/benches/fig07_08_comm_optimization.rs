//! Figures 7 and 8 regenerator: communication variants (Versions 5/6/7) on
//! ALLNODE-S and Ethernet — plus a live measurement of the V5-vs-V7
//! protocols on the real thread runtime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ns_core::config::{Regime, SolverConfig};
use ns_experiments::fig_lace;
use ns_numerics::Grid;
use ns_runtime::{run_parallel, CommVersion};

fn bench(c: &mut Criterion) {
    for regime in [Regime::NavierStokes, Regime::Euler] {
        println!("\n{}", fig_lace::fig7_8(regime).table());
    }
    let mut g = c.benchmark_group("fig07_08_live_protocols");
    g.sample_size(10);
    let cfg = SolverConfig::paper(Grid::new(96, 40, 50.0, 5.0), Regime::NavierStokes);
    for (version, name) in [(CommVersion::V5, "V5"), (CommVersion::V6, "V6"), (CommVersion::V7, "V7")] {
        g.bench_with_input(BenchmarkId::new("live_4ranks_5steps", name), &version, |b, &v| {
            b.iter(|| std::hint::black_box(run_parallel(&cfg, 4, 5, v)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
