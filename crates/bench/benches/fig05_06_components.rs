//! Figures 5 and 6 regenerator: busy time vs non-overlapped communication
//! on the LACE networks.

use criterion::{criterion_group, criterion_main, Criterion};
use ns_core::config::Regime;
use ns_experiments::fig_lace;

fn bench(c: &mut Criterion) {
    for regime in [Regime::NavierStokes, Regime::Euler] {
        println!("\n{}", fig_lace::fig5_6(regime).render());
    }
    let mut g = c.benchmark_group("fig05_06");
    g.sample_size(15);
    g.bench_function("components_ns", |b| b.iter(|| std::hint::black_box(fig_lace::fig5_6(Regime::NavierStokes))));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
