//! Microbenchmarks of the solver's hot kernels across the optimization
//! versions — the kernel-level view behind Figure 2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ns_core::config::{Regime, SolverConfig, Version};
use ns_core::field::{Field, FluxField, Patch, PrimField, Workspace};
use ns_core::kernels::{self, EdgeFlags, FluxDir};
use ns_core::opcount::FlopLedger;
use ns_core::scheme::{self, NoHalo, Variant};
use ns_numerics::gas::Primitive;
use ns_numerics::Grid;

fn setup(regime: Regime) -> (SolverConfig, Field, PrimField, FluxField, Patch) {
    let cfg = SolverConfig::paper(Grid::new(125, 50, 50.0, 5.0), regime);
    let gas = cfg.effective_gas();
    let patch = Patch::whole(cfg.grid.clone());
    let field = Field::from_primitives(patch.clone(), &gas, |x, r| Primitive {
        rho: 1.0 + 0.05 * (0.1 * x).sin() * (-r).exp(),
        u: 0.5 + 0.2 * (-(r - 1.0) * (r - 1.0)).exp(),
        v: 0.01 * (0.3 * x).sin(),
        p: gas.pressure(1.0, 1.0),
    });
    let prim = PrimField::zeros(&patch);
    let flux = FluxField::zeros(&patch);
    (cfg, field, prim, flux, patch)
}

fn bench_prims(c: &mut Criterion) {
    let (cfg, field, mut prim, _, patch) = setup(Regime::NavierStokes);
    let gas = cfg.effective_gas();
    let mut g = c.benchmark_group("kernel_prims");
    g.throughput(Throughput::Elements((patch.nxl * patch.nr()) as u64));
    for v in Version::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(format!("{v:?}")), &v, |b, &v| {
            let mut ledger = FlopLedger::default();
            b.iter(|| kernels::compute_prims(v, &field, &mut prim, &gas, &mut ledger));
        });
    }
    g.finish();
}

fn bench_flux(c: &mut Criterion) {
    for (regime, name) in [(Regime::NavierStokes, "viscous"), (Regime::Euler, "inviscid")] {
        let (cfg, field, mut prim, mut flux, patch) = setup(regime);
        let gas = cfg.effective_gas();
        let mut ledger = FlopLedger::default();
        kernels::compute_prims(Version::V5, &field, &mut prim, &gas, &mut ledger);
        ns_core::bc::mirror_prims_axis(&mut prim);
        ns_core::bc::extrap_prims_top(&mut prim, patch.nr());
        let edges = EdgeFlags::of(&patch);
        let mut g = c.benchmark_group(format!("kernel_xflux_{name}"));
        g.throughput(Throughput::Elements((patch.nxl * patch.nr()) as u64));
        for v in Version::ALL {
            g.bench_with_input(BenchmarkId::from_parameter(format!("{v:?}")), &v, |b, &v| {
                let mut ledger = FlopLedger::default();
                b.iter(|| {
                    kernels::compute_flux(v, FluxDir::X, &prim, &patch, edges, &gas, &mut flux, None, &mut ledger)
                });
            });
        }
        g.finish();
    }
}

fn bench_operators(c: &mut Criterion) {
    let mut g = c.benchmark_group("operators");
    g.sample_size(30);
    for regime in [Regime::NavierStokes, Regime::Euler] {
        let cfg = SolverConfig::paper(Grid::new(125, 50, 50.0, 5.0), regime);
        let gas = cfg.effective_gas();
        let mut field = ns_core::driver::initial_field(&cfg, Patch::whole(cfg.grid.clone()));
        let mut ws = Workspace::new(&field.patch);
        let dt = cfg.time_step();
        let mut ledger = FlopLedger::default();
        g.bench_function(format!("x_operator_{}", regime.name()), |b| {
            b.iter(|| {
                scheme::x_operator(Variant::L1, &mut field, &mut ws, &cfg, &gas, &mut NoHalo, 0.0, dt, &mut ledger)
            })
        });
        g.bench_function(format!("r_operator_{}", regime.name()), |b| {
            b.iter(|| scheme::r_operator(Variant::L1, &mut field, &mut ws, &cfg, &gas, dt, &mut ledger))
        });
        // same operator with phase attribution armed: the difference against
        // the rows above is the telemetry-on cost; the disabled-timer cost
        // (one branch per phase switch) is below run-to-run noise
        ws.timers.enable();
        g.bench_function(format!("x_operator_timed_{}", regime.name()), |b| {
            b.iter(|| {
                scheme::x_operator(Variant::L1, &mut field, &mut ws, &cfg, &gas, &mut NoHalo, 0.0, dt, &mut ledger)
            })
        });
        ws.timers = Default::default();
    }
    g.finish();
}

criterion_group!(benches, bench_prims, bench_flux, bench_operators);
criterion_main!(benches);
