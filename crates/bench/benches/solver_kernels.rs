//! Microbenchmarks of the solver's hot kernels across the optimization
//! versions — the kernel-level view behind Figure 2.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use ns_bench::MedianBench;
use ns_core::config::{Regime, SolverConfig, Version};
use ns_core::field::{Field, FluxField, Patch, PrimField, Workspace};
use ns_core::kernels::{self, EdgeFlags, FluxDir};
use ns_core::opcount::FlopLedger;
use ns_core::scheme::{self, NoHalo, Variant};
use ns_numerics::gas::Primitive;
use ns_numerics::Grid;

fn setup(regime: Regime) -> (SolverConfig, Field, PrimField, FluxField, Patch) {
    let cfg = SolverConfig::paper(Grid::new(125, 50, 50.0, 5.0), regime);
    let gas = cfg.effective_gas();
    let patch = Patch::whole(cfg.grid.clone());
    let field = Field::from_primitives(patch.clone(), &gas, |x, r| Primitive {
        rho: 1.0 + 0.05 * (0.1 * x).sin() * (-r).exp(),
        u: 0.5 + 0.2 * (-(r - 1.0) * (r - 1.0)).exp(),
        v: 0.01 * (0.3 * x).sin(),
        p: gas.pressure(1.0, 1.0),
    });
    let prim = PrimField::zeros(&patch);
    let flux = FluxField::zeros(&patch);
    (cfg, field, prim, flux, patch)
}

fn bench_prims(c: &mut Criterion) {
    let (cfg, field, mut prim, _, patch) = setup(Regime::NavierStokes);
    let gas = cfg.effective_gas();
    let mut g = c.benchmark_group("kernel_prims");
    g.throughput(Throughput::Elements((patch.nxl * patch.nr()) as u64));
    for v in Version::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(format!("{v:?}")), &v, |b, &v| {
            let mut ledger = FlopLedger::default();
            b.iter(|| kernels::compute_prims(v, &field, &mut prim, &gas, &mut ledger));
        });
    }
    g.finish();
}

fn bench_flux(c: &mut Criterion) {
    for (regime, name) in [(Regime::NavierStokes, "viscous"), (Regime::Euler, "inviscid")] {
        let (cfg, field, mut prim, mut flux, patch) = setup(regime);
        let gas = cfg.effective_gas();
        let mut ledger = FlopLedger::default();
        kernels::compute_prims(Version::V5, &field, &mut prim, &gas, &mut ledger);
        ns_core::bc::mirror_prims_axis(&mut prim);
        ns_core::bc::extrap_prims_top(&mut prim, patch.nr());
        let edges = EdgeFlags::of(&patch);
        let mut g = c.benchmark_group(format!("kernel_xflux_{name}"));
        g.throughput(Throughput::Elements((patch.nxl * patch.nr()) as u64));
        for v in Version::ALL {
            g.bench_with_input(BenchmarkId::from_parameter(format!("{v:?}")), &v, |b, &v| {
                let mut ledger = FlopLedger::default();
                b.iter(|| {
                    kernels::compute_flux(v, FluxDir::X, &prim, &patch, edges, &gas, &mut flux, None, &mut ledger)
                });
            });
        }
        g.finish();
    }
}

fn bench_operators(c: &mut Criterion) {
    let mut g = c.benchmark_group("operators");
    g.sample_size(30);
    for regime in [Regime::NavierStokes, Regime::Euler] {
        let cfg = SolverConfig::paper(Grid::new(125, 50, 50.0, 5.0), regime);
        let gas = cfg.effective_gas();
        let mut field = ns_core::driver::initial_field(&cfg, Patch::whole(cfg.grid.clone()));
        let mut ws = Workspace::new(&field.patch);
        let dt = cfg.time_step();
        let mut ledger = FlopLedger::default();
        g.bench_function(format!("x_operator_{}", regime.name()), |b| {
            b.iter(|| {
                scheme::x_operator(Variant::L1, &mut field, &mut ws, &cfg, &gas, &mut NoHalo, 0.0, dt, &mut ledger)
            })
        });
        g.bench_function(format!("r_operator_{}", regime.name()), |b| {
            b.iter(|| scheme::r_operator(Variant::L1, &mut field, &mut ws, &cfg, &gas, &mut NoHalo, dt, &mut ledger))
        });
        // same operator with phase attribution armed: the difference against
        // the rows above is the telemetry-on cost; the disabled-timer cost
        // (one branch per phase switch) is below run-to-run noise
        ws.timers.enable();
        g.bench_function(format!("x_operator_timed_{}", regime.name()), |b| {
            b.iter(|| {
                scheme::x_operator(Variant::L1, &mut field, &mut ws, &cfg, &gas, &mut NoHalo, 0.0, dt, &mut ledger)
            })
        });
        ws.timers = Default::default();
    }
    g.finish();
}

/// One prims+ghosts+flux plane sweep — the unit the V6 fusion optimizes.
/// V1–V5 run the two-pass sequence; V6 runs the fused single sweep; V7
/// runs the SoA lane-vectorized sweep over cache-blocked radial tiles
/// (default tile size, no exports — the bench consumes only the flux).
#[allow(clippy::too_many_arguments)]
fn plane_sweep(
    v: Version,
    field: &Field,
    prim: &mut PrimField,
    flux: &mut FluxField,
    patch: &Patch,
    edges: EdgeFlags,
    gas: &ns_numerics::gas::GasModel,
    soa: &mut Option<Box<ns_core::soa::SoaWs>>,
    ledger: &mut FlopLedger,
) {
    if v >= Version::V6 {
        kernels::fused_sweep_version(
            v,
            ns_core::config::DEFAULT_TILE_R,
            soa,
            FluxDir::X,
            field,
            prim,
            edges,
            gas,
            flux,
            None,
            0..patch.nxl,
            0..patch.nxl,
            None,
            &[],
            ledger,
        );
    } else {
        kernels::compute_prims(v, field, prim, gas, ledger);
        ns_core::bc::mirror_prims_axis(prim);
        ns_core::bc::extrap_prims_top(prim, patch.nr());
        kernels::compute_flux(v, FluxDir::X, prim, patch, edges, gas, flux, None, ledger);
    }
}

/// Machine-readable ladder: median ns/op per version per grid size, written
/// into `BENCH_kernels.json` (the committed perf trajectory) with MFLOPS
/// derived from the `FlopLedger` model. The versions are measured as one
/// interleaved group per grid so CPU-frequency drift can't bias the
/// few-percent rung-to-rung deltas. Quick mode drops the large grid.
fn json_ladder() {
    let mut h = MedianBench::from_env();
    let mut grids = vec![(Grid::new(125, 50, 50.0, 5.0), "125x50")];
    if !h.quick() {
        grids.push((Grid::paper(), "250x100"));
    }
    for (grid, gname) in grids {
        let cfg = SolverConfig::paper(grid, Regime::NavierStokes);
        let gas = cfg.effective_gas();
        let patch = Patch::whole(cfg.grid.clone());
        let field = Field::from_primitives(patch.clone(), &gas, |x, r| Primitive {
            rho: 1.0 + 0.05 * (0.1 * x).sin() * (-r).exp(),
            u: 0.5 + 0.2 * (-(r - 1.0) * (r - 1.0)).exp(),
            v: 0.01 * (0.3 * x).sin(),
            p: gas.pressure(1.0, 1.0),
        });
        let edges = EdgeFlags::of(&patch);
        // Flop model for one sweep: identical across versions by design
        // (the ledger counts useful work; the versions differ in time).
        let flops = {
            let mut prim = PrimField::zeros(&patch);
            let mut flux = FluxField::zeros(&patch);
            let mut model = FlopLedger::default();
            plane_sweep(Version::V5, &field, &mut prim, &mut flux, &patch, edges, &gas, &mut None, &mut model);
            model.total() as f64
        };
        let mut items: Vec<ns_bench::GroupItem> = Version::ALL
            .iter()
            .map(|&v| {
                let mut prim = PrimField::zeros(&patch);
                let mut flux = FluxField::zeros(&patch);
                let mut soa = None;
                let mut ledger = FlopLedger::default();
                let (field, patch, gas) = (&field, &patch, &gas);
                ns_bench::GroupItem {
                    id: format!("{v:?}"),
                    flops: Some(flops),
                    f: Box::new(move || {
                        plane_sweep(v, field, &mut prim, &mut flux, patch, edges, gas, &mut soa, &mut ledger);
                    }),
                }
            })
            .collect();
        h.measure_interleaved(&format!("prims_flux_sweep/{gname}"), &mut items);
    }
    h.write_merged(&ns_bench::output_path()).expect("write BENCH_kernels.json");
}

criterion_group!(benches, bench_prims, bench_flux, bench_operators);

fn main() {
    benches();
    json_ladder();
}
