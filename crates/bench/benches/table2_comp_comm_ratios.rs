//! Table 2 regenerator: computation-to-communication ratios vs processor
//! count, ours against the paper's rows.

use criterion::{criterion_group, criterion_main, Criterion};
use ns_experiments::tables;

fn bench(c: &mut Criterion) {
    println!("\n{}", tables::table2().table());
    let mut g = c.benchmark_group("table2");
    g.sample_size(20);
    g.bench_function("ratios", |b| b.iter(|| std::hint::black_box(tables::table2())));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
