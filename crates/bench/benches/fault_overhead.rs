//! Overhead of the reliability layer when nothing goes wrong: the seed's
//! raw endpoint path versus the framed (seq + checksum, NACK-capable) path
//! with no fault injector attached. The framed numbers bound what a
//! production run pays for the ability to survive a lossy network — the
//! acceptance bar is "within noise of the raw path" for halo-sized
//! messages, which `BENCH_faults.json` records as the committed datapoint.
//!
//! The two paths are measured interleaved (see
//! [`MedianBench::measure_interleaved`]) so frequency drift cannot fake or
//! hide a delta.

use ns_bench::{GroupItem, MedianBench};
use ns_runtime::comm::{universe, universe_reliable, Endpoint, MsgKind, ReliableConfig, Tag};
use ns_runtime::pack::PackBuf;

/// One same-thread send+recv round trip of `n` doubles on a 2-rank pair.
fn ping(a: &mut Endpoint, b: &mut Endpoint, data: &[f64], seq: &mut u64) {
    let mut p = PackBuf::with_capacity_f64(data.len());
    p.pack_f64_slice(data);
    let tag = Tag { kind: MsgKind::Flux1, seq: *seq };
    a.send(1, tag, p).unwrap();
    std::hint::black_box(b.recv(0, tag).unwrap());
    *seq += 1;
}

fn main() {
    let mut h = MedianBench::from_env();
    // 100 doubles is the paper-grid halo column scale; 6400 is a whole-face
    // gather — the framing cost should vanish into the memcpy by then.
    for n in [100usize, 6400] {
        let data = vec![0.5f64; n];

        let mut raw = universe(2);
        let mut raw_b = raw.pop().unwrap();
        let mut raw_a = raw.pop().unwrap();
        let mut raw_seq = 0u64;

        let mut rel = universe_reliable(2, ReliableConfig::default(), None);
        let mut rel_b = rel.pop().unwrap();
        let mut rel_a = rel.pop().unwrap();
        let mut rel_seq = 0u64;

        let d1 = &data;
        let d2 = &data;
        h.measure_interleaved(
            &format!("fault_overhead/{n}x8B"),
            &mut [
                GroupItem {
                    id: "raw".to_string(),
                    flops: None,
                    f: Box::new(move || ping(&mut raw_a, &mut raw_b, d1, &mut raw_seq)),
                },
                GroupItem {
                    id: "framed".to_string(),
                    flops: None,
                    f: Box::new(move || ping(&mut rel_a, &mut rel_b, d2, &mut rel_seq)),
                },
            ],
        );
    }
    // default to the repo root (cargo bench runs with the package dir as
    // its working directory)
    let path = std::env::var_os("NS_BENCH_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_faults.json")));
    h.write_merged(&path).expect("write BENCH_faults.json");
}
