//! Figure 13 regenerator: per-processor busy times on the IBM SP (modeled)
//! and on the live thread runtime (measured).

use criterion::{criterion_group, criterion_main, Criterion};
use ns_core::config::{Regime, SolverConfig};
use ns_experiments::fig_platforms;
use ns_numerics::Grid;
use ns_runtime::{run_parallel, CommVersion};

fn bench(c: &mut Criterion) {
    println!("\n{}", fig_platforms::fig13().table());

    // the live analogue: per-rank busy time of a real 8-rank run
    let cfg = SolverConfig::paper(Grid::new(128, 50, 50.0, 5.0), Regime::NavierStokes);
    let run = run_parallel(&cfg, 8, 10, CommVersion::V5);
    println!("live per-rank busy time (8 ranks, 10 steps on this host):");
    for r in &run.ranks {
        println!("  rank {}: busy {:>8.2?}  wait {:>8.2?}", r.rank, r.busy, r.wait);
    }

    let mut g = c.benchmark_group("fig13");
    g.sample_size(15);
    g.bench_function("modeled_load_balance", |b| b.iter(|| std::hint::black_box(fig_platforms::fig13())));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
