//! Figures 3 and 4 regenerator: execution time on the LACE networks.

use criterion::{criterion_group, criterion_main, Criterion};
use ns_archsim::{simulate, Platform, SimConfig};
use ns_core::config::Regime;
use ns_experiments::fig_lace;

fn bench(c: &mut Criterion) {
    for regime in [Regime::NavierStokes, Regime::Euler] {
        println!("\n{}", fig_lace::fig3_4(regime).render());
    }
    let mut g = c.benchmark_group("fig03_04");
    g.sample_size(20);
    g.bench_function("simulate_allnode_s_16procs", |b| {
        let mut cfg = SimConfig::paper(Platform::lace560_allnode_s(), 16, Regime::NavierStokes);
        cfg.sim_steps = 20;
        b.iter(|| std::hint::black_box(simulate(&cfg)))
    });
    g.bench_function("full_figure3", |b| b.iter(|| std::hint::black_box(fig_lace::fig3_4(Regime::NavierStokes))));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
