//! Ablation studies for the design choices DESIGN.md calls out:
//! decomposition direction, scheme order, message grouping, and the
//! extension studies (full 64-node T3D, weak scaling).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ns_core::config::{Regime, SchemeOrder, SolverConfig};
use ns_core::Solver;
use ns_experiments::extensions;
use ns_numerics::Grid;

fn bench(c: &mut Criterion) {
    for regime in [Regime::NavierStokes, Regime::Euler] {
        println!("\n{}", extensions::decomposition_ablation(regime).table());
    }
    println!("\n{}", extensions::extended_scaling(Regime::NavierStokes).render());
    println!("\n{}", extensions::weak_scaling(Regime::NavierStokes).table());
    println!(
        "\n{}",
        extensions::phase_profile(ns_archsim::Platform::lace560_allnode_s(), Regime::NavierStokes, &[1, 4, 16]).table()
    );
    println!("\n{}", extensions::now_projection(Regime::NavierStokes).render());

    // scheme-order ablation: cost per step of 2-4 vs 2-2 on the host (the
    // 2-4 scheme buys its accuracy with a slightly wider stencil; accuracy
    // itself is asserted in tests/verification.rs)
    let mut g = c.benchmark_group("scheme_order_step_cost");
    g.sample_size(20);
    for (order, name) in [(SchemeOrder::TwoFour, "2-4"), (SchemeOrder::TwoTwo, "2-2")] {
        let mut cfg = SolverConfig::paper(Grid::new(125, 50, 50.0, 5.0), Regime::NavierStokes);
        cfg.scheme = order;
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            let mut s = Solver::new(cfg.clone());
            b.iter(|| s.step());
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
