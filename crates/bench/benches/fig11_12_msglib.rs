//! Figures 11 and 12 regenerator: MPL vs PVMe on the IBM SP.

use criterion::{criterion_group, criterion_main, Criterion};
use ns_core::config::Regime;
use ns_experiments::fig_msglib;

fn bench(c: &mut Criterion) {
    for regime in [Regime::NavierStokes, Regime::Euler] {
        println!("\n{}", fig_msglib::fig11_12(regime).render());
    }
    let mut g = c.benchmark_group("fig11_12");
    g.sample_size(15);
    g.bench_function("msglib_comparison_ns", |b| {
        b.iter(|| std::hint::black_box(fig_msglib::fig11_12(Regime::NavierStokes)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
