//! Figures 9 and 10 regenerator: the cross-platform execution-time
//! comparison (Y-MP, IBM SP, Cray T3D, LACE ALLNODE-S/F).

use criterion::{criterion_group, criterion_main, Criterion};
use ns_core::config::Regime;
use ns_experiments::fig_platforms;

fn bench(c: &mut Criterion) {
    for regime in [Regime::NavierStokes, Regime::Euler] {
        println!("\n{}", fig_platforms::fig9_10(regime).render());
    }
    let mut g = c.benchmark_group("fig09_10");
    g.sample_size(15);
    g.bench_function("shootout_ns", |b| b.iter(|| std::hint::black_box(fig_platforms::fig9_10(Regime::NavierStokes))));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
