//! Table 1 regenerator: prints the application-characteristics table
//! (ours vs the paper's) and benchmarks the characteristic extraction,
//! which includes the live-solver workload validation path.

use criterion::{criterion_group, criterion_main, Criterion};
use ns_core::config::Regime;
use ns_experiments::{tables, validation};
use ns_numerics::Grid;

fn bench(c: &mut Criterion) {
    println!("\n{}", tables::table1().table());
    let err = validation::workload_vs_ledger_error(Grid::small(), Regime::NavierStokes, 3);
    println!("workload-model vs live-solver ledger relative error: {err:.2e}\n");

    let mut g = c.benchmark_group("table1");
    g.sample_size(20);
    g.bench_function("characteristics_both_apps", |b| {
        b.iter(|| {
            let ns = tables::characteristics(Regime::NavierStokes);
            let eu = tables::characteristics(Regime::Euler);
            std::hint::black_box((ns, eu))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
