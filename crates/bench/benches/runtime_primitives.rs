//! Microbenchmarks of the message-passing runtime: pack/unpack, endpoint
//! round trips, halo exchanges and collectives — the software costs the
//! paper blames for NOW overheads, measured on the real implementation.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use ns_bench::{GroupItem, MedianBench};
use ns_metrics::{FlightRecorder, Registry};
use ns_runtime::collectives;
use ns_runtime::comm::{universe, MsgKind, Tag};
use ns_runtime::pack::{BufPool, PackBuf, UnpackBuf};

fn bench_pack(c: &mut Criterion) {
    let mut g = c.benchmark_group("pack_unpack");
    for n in [100usize, 800, 6400] {
        let data = vec![1.25f64; n];
        g.throughput(Throughput::Bytes((n * 8) as u64));
        g.bench_with_input(BenchmarkId::new("pack_f64", n), &n, |b, _| {
            b.iter(|| {
                let mut p = PackBuf::with_capacity_f64(n);
                p.pack_f64_slice(&data);
                std::hint::black_box(p.freeze())
            })
        });
        g.bench_with_input(BenchmarkId::new("roundtrip", n), &n, |b, _| {
            b.iter(|| {
                let mut p = PackBuf::with_capacity_f64(n);
                p.pack_f64_slice(&data);
                let mut u = UnpackBuf::new(p.freeze());
                let mut out = vec![0.0f64; n];
                u.unpack_f64_slice(&mut out).unwrap();
                std::hint::black_box(out)
            })
        });
    }
    g.finish();
}

fn bench_ping_pong(c: &mut Criterion) {
    let mut g = c.benchmark_group("endpoint");
    g.sample_size(30);
    g.bench_function("same_thread_send_recv_800B", |b| {
        let mut eps = universe(2);
        let mut b1 = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let mut seq = 0u64;
        b.iter(|| {
            let mut p = PackBuf::with_capacity_f64(100);
            p.pack_f64_slice(&[0.5; 100]);
            let tag = Tag { kind: MsgKind::Flux1, seq };
            a.send(1, tag, p).unwrap();
            let got = b1.recv(0, tag).unwrap();
            seq += 1;
            std::hint::black_box(got)
        })
    });
    g.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives");
    g.sample_size(20);
    g.bench_function("allreduce_max_4ranks", |b| {
        b.iter(|| {
            let eps = universe(4);
            std::thread::scope(|s| {
                let hs: Vec<_> = eps
                    .into_iter()
                    .map(|mut ep| {
                        s.spawn(move || {
                            let mine = ep.rank() as f64;
                            collectives::allreduce_max(&mut ep, mine, 0).unwrap()
                        })
                    })
                    .collect();
                for h in hs {
                    std::hint::black_box(h.join().unwrap());
                }
            })
        })
    });
    g.finish();
}

/// Machine-readable runtime microbenchmarks for `BENCH_kernels.json`:
/// pack/roundtrip cost per payload size, the pooled-vs-fresh buffer
/// comparison behind the zero-allocation halo path, and a same-thread
/// message round trip.
fn json_runtime() {
    let mut h = MedianBench::from_env();
    for n in [100usize, 800, 6400] {
        let data = vec![1.25f64; n];
        h.measure("pack_f64", &n.to_string(), None, || {
            let mut p = PackBuf::with_capacity_f64(n);
            p.pack_f64_slice(&data);
            std::hint::black_box(p.freeze());
        });
        // Fresh allocation per message (the pre-pool hot path) ...
        h.measure("pack_roundtrip_fresh", &n.to_string(), None, || {
            let mut p = PackBuf::with_capacity_f64(n);
            p.pack_f64_slice(&data);
            let mut u = UnpackBuf::new(p.freeze());
            let mut out = vec![0.0f64; n];
            u.unpack_f64_slice(&mut out).unwrap();
            std::hint::black_box(&out);
        });
        // ... versus the recycling pool, steady state: acquire reuses the
        // buffer the previous iteration recycled, so no allocation.
        let mut pool = BufPool::default();
        let mut out = vec![0.0f64; n];
        h.measure("pack_roundtrip_pooled", &n.to_string(), None, || {
            let mut p = pool.acquire_f64(n);
            p.pack_f64_slice(&data);
            let mut u = UnpackBuf::new(p.freeze());
            u.unpack_f64_slice(&mut out).unwrap();
            pool.recycle(u.finish().unwrap());
            std::hint::black_box(&out);
        });
    }
    {
        let mut eps = universe(2);
        let mut b1 = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let mut seq = 0u64;
        h.measure("endpoint_ping", "800B", None, || {
            let mut p = PackBuf::with_capacity_f64(100);
            p.pack_f64_slice(&[0.5; 100]);
            let tag = Tag { kind: MsgKind::Flux1, seq };
            a.send(1, tag, p).unwrap();
            std::hint::black_box(b1.recv(0, tag).unwrap());
            seq += 1;
        });
    }
    json_metrics_overhead(&mut h);
    h.write_merged(&ns_bench::output_path()).expect("write BENCH_kernels.json");
}

/// The cost of the always-on observability layer, measured as a paired
/// experiment (ISSUE 6 acceptance): the same synthetic hot loop with and
/// without each metric operation inlined, interleaved so CPU drift lands on
/// both sides equally. The committed deltas document what the default
/// (no opt-out) instrumentation costs per event.
fn json_metrics_overhead(h: &mut MedianBench) {
    let work = |acc: &mut f64| {
        for k in 0..32 {
            *acc += f64::from(k) * 1.000001;
        }
        std::hint::black_box(*acc);
    };
    let counter = Registry::global().counter("bench_overhead_counter");
    let histogram = Registry::global().histogram("bench_overhead_histogram");
    let mut flight = FlightRecorder::default();
    let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let mut k = 0u64;
    let mut items = [
        GroupItem { id: "hot_loop_bare".to_string(), flops: None, f: Box::new(|| work(&mut a0)) },
        GroupItem {
            id: "hot_loop_counter".to_string(),
            flops: None,
            f: Box::new(|| {
                work(&mut a1);
                counter.inc();
            }),
        },
        GroupItem {
            id: "hot_loop_histogram".to_string(),
            flops: None,
            f: Box::new(|| {
                work(&mut a2);
                k += 1;
                histogram.record(k & 0xffff);
            }),
        },
        GroupItem {
            id: "hot_loop_flight".to_string(),
            flops: None,
            f: Box::new(|| {
                work(&mut a3);
                flight.record("send", "Flux1", Some(1), Some(7), Some(9), 800);
            }),
        },
    ];
    h.measure_interleaved("metrics_overhead", &mut items);
}

criterion_group!(benches, bench_pack, bench_ping_pong, bench_collectives);

fn main() {
    benches();
    json_runtime();
}
