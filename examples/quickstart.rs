//! Quickstart: build the paper's solver, run a few hundred steps of the
//! excited supersonic jet on a reduced grid, and look at the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ns_core::config::{Regime, SolverConfig};
use ns_core::{diag, Solver};
use ns_experiments::contour;
use ns_numerics::Grid;

fn main() {
    // a quarter-resolution version of the paper's 250x100 domain
    let grid = Grid::new(125, 50, 50.0, 5.0);
    let cfg = SolverConfig::paper(grid, Regime::NavierStokes);
    println!("grid {}x{}, dt = {:.5}, Re_D = 1.2e6, M_c = 1.5", cfg.grid.nx, cfg.grid.nr, cfg.time_step());

    let mut solver = Solver::new(cfg);
    let inv0 = solver.invariants();
    solver.run(400);

    let gas = *solver.gas();
    let inv1 = solver.invariants();
    println!("after {} steps (t = {:.2}):", solver.nstep, solver.t);
    println!("  healthy            : {}", solver.healthy());
    println!("  max Mach           : {:.3}", diag::max_mach(&solver.field, &gas));
    println!("  mass drift         : {:+.3e}", (inv1.mass - inv0.mass) / inv0.mass);
    println!("  FP operations      : {:.2e}", solver.ledger.total() as f64);

    println!("\naxial momentum (rho u), jet core at the bottom:");
    let momentum = diag::axial_momentum(&solver.field, &gas);
    print!("{}", contour::ascii(&momentum, 100, 20));
}
