//! End-to-end aeroacoustics demo — the paper's motivating use case: compute
//! the time-accurate near field of the excited jet, record pressure
//! histories along an arc, find the response at the forcing Strouhal
//! number, and extrapolate to far-field sound levels.
//!
//! ```text
//! cargo run --release --example jet_noise
//! ```

use ns_core::config::{Regime, SolverConfig};
use ns_core::probe::{amplitude_spectrum, dominant_frequency, ProbeArray};
use ns_core::Solver;
use ns_experiments::acoustics::{directivity, PressureHistory};
use ns_numerics::Grid;

fn main() {
    let grid = Grid::new(125, 50, 50.0, 5.0);
    let mut cfg = SolverConfig::paper(grid, Regime::Euler);
    cfg.dissipation = 0.002;
    let f_force = cfg.excitation.omega(cfg.jet.u_c) / (2.0 * std::f64::consts::PI);
    println!("excited jet, forcing at St = {} (f = {:.4})", cfg.excitation.strouhal, f_force);

    let mut solver = Solver::new(cfg);
    // an arc of near-field probes around x = 8, various angles off the axis
    let arc: Vec<(f64, (f64, f64))> = vec![
        (20.0, (8.0 + 3.0 * 0.94, 3.0 * 0.34)),
        (40.0, (8.0 + 3.0 * 0.77, 3.0 * 0.64)),
        (60.0, (8.0 + 3.0 * 0.50, 3.0 * 0.87)),
        (80.0, (8.0 + 3.0 * 0.17, 3.0 * 0.98)),
    ];
    let coords: Vec<(f64, f64)> = arc.iter().map(|&(_, c)| c).collect();
    let mut probes = ProbeArray::new(&solver.field, &coords);
    let gas = *solver.gas();

    // warm up two forcing periods, then record six
    let period = 1.0 / f_force;
    let warm = (2.0 * period / solver.dt()).ceil() as u64;
    solver.run(warm);
    let steps = (6.0 * period / solver.dt()).ceil() as u64;
    for _ in 0..steps {
        solver.step();
        probes.sample(&solver.field, &gas, solver.t);
    }
    println!("ran {} steps to t = {:.1}; healthy = {}", solver.nstep, solver.t, solver.healthy());

    // spectral response at the first probe
    let s0 = &probes.series[0];
    let bins = amplitude_spectrum(&s0.t, &s0.p);
    if let Some(peak) = dominant_frequency(&bins) {
        println!(
            "pressure spectrum at probe 0: peak f = {:.4} (forcing {:.4}), amplitude {:.2e}",
            peak.frequency, f_force, peak.amplitude
        );
    }

    // far-field directivity at 100 radii (Kirchhoff-style spherical
    // spreading from the near-field arc; p_ref chosen for readable dB)
    let c = 1.0; // ambient sound speed in our nondimensionalization is ~sqrt(T_inf) = 0.707; use jet-core c for scale
    let histories: Vec<(f64, PressureHistory)> = arc
        .iter()
        .zip(&probes.series)
        .map(|(&(angle, _), series)| (angle, PressureHistory::from_probe(series, 3.0)))
        .collect();
    println!("\nfar-field directivity at R = 100 jet radii:");
    for d in directivity(&histories, 100.0, c, 1e-6) {
        let bar = "#".repeat(((d.spl_db.max(0.0)) / 2.0) as usize);
        println!("  {:>5.0} deg | {bar} {:.1} dB (p_rms {:.2e})", d.angle_deg, d.spl_db, d.p_rms);
    }
    println!("\n(low angles — closer to the jet axis — receive more of the instability-wave noise,");
    println!(" the directivity pattern Lighthill-analogy studies of supersonic jets report)");
}
