//! Real wall-clock scalability of the actual Rust solver on this machine:
//! the thread-backed message-passing runtime (the paper's distributed-memory
//! style) and the Rayon shared-memory driver (the paper's Y-MP DOALL style),
//! plus the serial-vs-parallel agreement check.
//!
//! ```text
//! cargo run --release --example parallel_speedup
//! ```

use ns_core::config::{Regime, SolverConfig};
use ns_core::Solver;
use ns_experiments::speedup;
use ns_numerics::Grid;
use ns_runtime::{run_parallel, CommVersion};

fn main() {
    let grid = Grid::new(200, 80, 50.0, 5.0);
    let steps = 60;
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let counts: Vec<usize> = [2usize, 4, 8, 16].into_iter().filter(|&p| p <= cores.max(2)).collect();
    println!("host has {cores} cores; grid {}x{}, {} steps per measurement\n", grid.nx, grid.nr, steps);

    let mp = speedup::message_passing_speedup(grid.clone(), steps, &counts, Regime::NavierStokes);
    println!("{}", mp.table());
    let base = mp.series[0].at(1.0).unwrap();
    for &(p, t) in &mp.series[0].points {
        println!("  {p:>4.0} ranks: {t:8.3}s  speedup {:.2}x", base / t);
    }

    let sm = speedup::shared_memory_speedup(grid.clone(), steps, &counts, Regime::NavierStokes);
    println!("\n{}", sm.table());

    // correctness alongside the speed: distributed == serial
    let cfg = SolverConfig::paper(Grid::new(100, 40, 50.0, 5.0), Regime::Euler);
    let mut serial = Solver::new(cfg.clone());
    serial.run(20);
    let run = run_parallel(&cfg, counts.last().copied().unwrap_or(2), 20, CommVersion::V5);
    let diff = serial.field.max_diff(&run.gather_field());
    println!("\nserial vs {}-rank Euler max difference: {diff:e} (bitwise reproducible)", run.ranks.len());
    let t = run.total_stats();
    println!("messages: {} sends / {} receives, {:.1} MB moved", t.sends, t.recvs, t.bytes_sent as f64 / 1e6);
}
