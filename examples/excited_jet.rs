//! Figure 1 reproduction: the excited axisymmetric jet's axial-momentum
//! field.
//!
//! ```text
//! cargo run --release --example excited_jet            # quick (2000 steps, half grid)
//! cargo run --release --example excited_jet -- --paper # 250x100, 16000 steps, as in the paper
//! ```
//!
//! Writes `target/figure1_momentum.pgm` next to printing an ASCII contour.

use ns_core::config::Regime;
use ns_experiments::fig_flow;
use ns_numerics::Grid;

fn main() {
    let paper_scale = std::env::args().any(|a| a == "--paper");
    let (grid, steps) = if paper_scale { (Grid::paper(), 16_000) } else { (Grid::new(125, 50, 50.0, 5.0), 2_000) };
    println!(
        "running the excited jet: {}x{} grid, {} steps{}",
        grid.nx,
        grid.nr,
        steps,
        if paper_scale { " (paper configuration)" } else { " (quick; pass --paper for the full Figure 1 run)" }
    );
    // a touch of fourth-difference smoothing keeps the long strongly excited
    // run stable (documented substitution: the paper's scheme has none);
    // eps = 0.001 is validated to hold the paper's full 250x100 x 16000-step
    // configuration
    let eps = if paper_scale { 0.001 } else { 0.002 };
    let flow = fig_flow::excited_jet(grid, steps, Regime::NavierStokes, eps);
    println!("done: t = {:.1}, max Mach {:.2}", flow.t_end, flow.max_mach);
    print!("{}", flow.render_ascii(110, 24));

    let path = std::path::Path::new("target/figure1_momentum.pgm");
    if let Err(e) = std::fs::write(path, flow.render_pgm()) {
        eprintln!("could not write {}: {e}", path.display());
    } else {
        println!("wrote {}", path.display());
    }
}
