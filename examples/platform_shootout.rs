//! Figures 9, 10 and 13: the cross-platform comparison — Cray Y-MP, IBM SP,
//! Cray T3D and the two ALLNODE-connected LACE halves — plus the SP load
//! balance, regenerated from the calibrated platform simulator.
//!
//! ```text
//! cargo run --release --example platform_shootout
//! ```

use ns_core::config::Regime;
use ns_experiments::fig_platforms;

fn main() {
    for regime in [Regime::NavierStokes, Regime::Euler] {
        let r = fig_platforms::fig9_10(regime);
        println!("{}", r.render());
    }
    let r = fig_platforms::fig13();
    println!("{}", r.table());
    println!("busy-time bars (Figure 13):");
    let s = &r.series[0];
    let mx = s.points.iter().map(|&(_, y)| y).fold(0.0, f64::max);
    for &(k, y) in &s.points {
        let bar = "#".repeat((y / mx * 60.0).round() as usize);
        println!("  proc {:>2} | {bar} {:.0}s", k as usize, y);
    }
}
