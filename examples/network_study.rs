//! The NOW study (the paper's emphasis): Tables 1-2 and Figures 3-8 —
//! LACE under five networks, the busy/communication breakdown, and the
//! communication-optimization variants.
//!
//! ```text
//! cargo run --release --example network_study
//! ```

use ns_core::config::Regime;
use ns_experiments::{fig_lace, fig_versions, tables};

fn main() {
    println!("{}", tables::table1().table());
    println!("{}", tables::table2().table());
    println!("{}", fig_versions::simulated_1995().render());
    for regime in [Regime::NavierStokes, Regime::Euler] {
        println!("{}", fig_lace::fig3_4(regime).render());
        println!("{}", fig_lace::fig5_6(regime).render());
        println!("{}", fig_lace::fig7_8(regime).table());
    }
}
