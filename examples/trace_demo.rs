//! End-to-end tour of the telemetry stack: run the distributed jet with
//! every instrument armed, print the per-rank phase breakdown next to the
//! simulated LACE reference (same label vocabulary), draw the ASCII Gantt
//! timeline, and show the three machine-readable exports the `jetns
//! telemetry` subcommand writes to disk.
//!
//! ```text
//! cargo run --release --example trace_demo
//! ```

use ns_core::config::{Regime, SolverConfig};
use ns_experiments::report;
use ns_numerics::Grid;
use ns_runtime::{run_parallel_instrumented, CommVersion, TelemetryOptions};
use ns_telemetry::{to_chrome_trace, to_jsonl, trace_from_jsonl, HealthConfig};
use std::collections::BTreeMap;

fn main() {
    let ranks = 3;
    let steps = 12;
    let cfg = SolverConfig::paper(Grid::new(60, 24, 50.0, 5.0), Regime::NavierStokes);
    let opts = TelemetryOptions {
        phases: true,
        trace: true,
        health: Some(HealthConfig { cadence: 4, ..HealthConfig::default() }),
        ..Default::default()
    };
    println!("instrumented {}-rank Navier-Stokes run, {steps} steps…\n", ranks);
    let run = run_parallel_instrumented(&cfg, ranks, steps, CommVersion::V5, opts);

    // 1. phase attribution: live ranks vs the architecture simulator,
    //    comparable because both sides use the same phase labels
    let owned = |m: BTreeMap<&'static str, f64>| -> BTreeMap<String, f64> {
        m.into_iter().map(|(k, v)| (k.to_string(), v)).collect()
    };
    let mut columns: Vec<(String, BTreeMap<String, f64>)> =
        (0..ranks).map(|r| (format!("rank {r}"), owned(run.rank_phase_seconds(r)))).collect();
    let mut scfg = ns_archsim::SimConfig::paper(ns_archsim::Platform::lace560_allnode_s(), ranks, cfg.regime);
    scfg.grid = cfg.grid.clone();
    scfg.report_steps = steps;
    scfg.sim_steps = steps.min(4);
    columns.push(("LACE sim".to_string(), owned(ns_archsim::simulate(&scfg).phase_seconds)));
    println!("{}", report::phase_breakdown("Phase breakdown: live host vs simulated LACE", &columns));

    // 2. the merged message/phase timeline as an ASCII Gantt chart
    let trace = run.merged_trace();
    print!("{}", report::gantt(&trace, ranks, 90));

    // 3. the exports: JSONL (round-trips), Chrome trace_event, JSON summary
    let jsonl = to_jsonl(&trace);
    let back = trace_from_jsonl(&jsonl).expect("jsonl round-trip");
    assert!(back.iter().eq(trace.iter().copied()), "jsonl round-trip mismatch");
    let chrome = to_chrome_trace(&trace);
    let summary = run.summary("trace-demo");
    println!("\ntrace: {} events, {} JSONL bytes, {} Chrome-trace bytes", trace.len(), jsonl.len(), chrome.len());
    println!("first event: {}", jsonl.lines().next().unwrap_or(""));
    println!("\nrun summary:\n{}", summary.to_json());

    // the simulator emits the same event schema from virtual time
    let (_, sim_trace) = ns_archsim::simulate_traced(&scfg);
    println!("\nsimulated LACE timeline (virtual µs over {} steps):", scfg.sim_steps);
    print!("{}", report::gantt(&sim_trace, ranks, 90));
}
